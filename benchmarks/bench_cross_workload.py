"""Extension: cross-workload training (the paper's §8 SDCTune contrast).

IPAS's design choice is training on the *target* code; SDCTune trains on
other codes and transfers.  This bench protects each workload with
classifiers trained on each of three representative codes and reports the
SOC-reduction matrix — quantifying what target-specific fault injection
buys.
"""

import pytest

from repro.experiments import banner, format_table
from repro.experiments.cross_workload import run_cross_workload_matrix

from conftest import one_shot

#: three codes with contrasting instruction mixes:
#: int/pointer-heavy (is), FP-stencil (hpccg), FP-pairwise (comd)
CODES = ["is", "hpccg", "comd"]


def test_cross_workload_training(benchmark, report, scale):
    result = one_shot(
        benchmark, lambda: run_cross_workload_matrix(CODES, scale)
    )

    headers = ["train \\ test"] + CODES
    rows = []
    for train in CODES:
        row = [train]
        for test in CODES:
            cell = result["matrix"][train][test]
            row.append(f"{cell['soc_reduction']:.0f}% @{cell['slowdown']:.2f}x")
        rows.append(row)
    text = banner("Extension: cross-workload training (SOC reduction @ slowdown)") + "\n"
    text += format_table(headers, rows)
    text += (
        f"\nmean self-trained reduction:  {result['mean_self_trained']:.1f}%"
        f"\nmean cross-trained reduction: {result['mean_cross_trained']:.1f}%"
        "\n(the paper's §8 rationale for target-specific training: the gap above)"
    )
    report("cross_workload", text)

    # Target-specific training should not be worse on average — that is the
    # paper's §8 argument for fault injection in the target code.
    assert result["mean_self_trained"] >= result["mean_cross_trained"] - 10.0
    # Cross-trained classifiers still transfer something on average (the
    # features are program-independent).
    assert result["mean_cross_trained"] > 0.0
