"""Check-redundancy elimination: protected-run overhead reduction.

For every workload, three fully duplicated variants are golden-run and
their dynamic cycle counts compared:

* ``naive``      — one ``ipas.check`` per duplicated instruction
  (``check_placement="every"``, SWIFT's textbook placement);
* ``eliminated`` — the naive variant after
  :mod:`repro.passes.check_elim` removes subsumed checks;
* ``tails``      — the paper's duplication-path tail placement (the
  repo default), as the reference point.

Along the way the preservation contract is asserted: golden outputs of
every variant are bit-identical to the unprotected module's.  The
numbers are written to ``BENCH_checkelim.json`` at the repo root,
alongside ``BENCH_campaign.json``.

The headline finding: tail placement is already near-optimal — strict
subsumption finds (almost) nothing to remove from it, because path
tails feed non-injective sinks (loads, stores, phis, branches,
comparisons).  Elimination's win shows against naive placement, where
it removes 10–30% of checks and a measurable slice of protected-run
cycles.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_check_elim.py

or as part of the benchmark suite (``pytest benchmarks/``).
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path

from repro.faults import OutputVerifier
from repro.interp import run_module
from repro.passes import eliminate_redundant_checks
from repro.protect import DuplicationPass, FullDuplicationSelector
from repro.workloads import all_workloads

REPO_ROOT = Path(__file__).resolve().parents[1]
OUTPUT = REPO_ROOT / "BENCH_checkelim.json"


def golden(module):
    result, interp = run_module(module)
    assert result.status == "ok", result.error
    return interp.cycles, OutputVerifier().capture(interp)


def protect(workload, placement):
    module = workload.compile()
    dup = DuplicationPass(module, check_placement=placement)
    dup.run(FullDuplicationSelector().select(module))
    return module


def measure(workload) -> dict:
    _, reference = golden(workload.compile())

    naive = protect(workload, "every")
    naive_cycles, naive_out = golden(naive)

    eliminated = protect(workload, "every")
    elim_report = eliminate_redundant_checks(eliminated)
    elim_cycles, elim_out = golden(eliminated)

    tails = protect(workload, "tails")
    tails_elim = eliminate_redundant_checks(tails).checks_removed
    tails_cycles, tails_out = golden(tails)

    for label, out in (
        ("naive", naive_out),
        ("eliminated", elim_out),
        ("tails", tails_out),
    ):
        assert out == reference, f"{workload.name}/{label}: golden output drift"

    return {
        "naive_cycles": naive_cycles,
        "eliminated_cycles": elim_cycles,
        "tails_cycles": tails_cycles,
        "checks_before": elim_report.checks_before,
        "checks_removed": elim_report.checks_removed,
        "duplicates_removed": elim_report.duplicates_removed,
        "tails_checks_removed": tails_elim,
        "cycle_reduction": (
            (naive_cycles - elim_cycles) / naive_cycles if naive_cycles else 0.0
        ),
    }


def run_bench() -> dict:
    report = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "workloads": {},
    }
    for workload in all_workloads():
        report["workloads"][workload.name] = measure(workload)
    return report


def format_report(report: dict) -> str:
    lines = [
        "check elimination — protected golden-run cycles, full duplication",
        f"{'workload':>8}  {'naive':>10}  {'eliminated':>10}  {'saved':>6}  "
        f"{'checks':>11}  {'tails':>10}",
    ]
    for name, e in report["workloads"].items():
        lines.append(
            f"{name:>8}  {e['naive_cycles']:>10}  {e['eliminated_cycles']:>10}  "
            f"{e['cycle_reduction']:5.1%}  "
            f"{e['checks_removed']:>4}/{e['checks_before']:<6}  "
            f"{e['tails_cycles']:>10}"
        )
    lines.append(
        "tails column: the repo's default placement (near-optimal — "
        "elimination removes "
        + ", ".join(
            str(e["tails_checks_removed"])
            for e in report["workloads"].values()
        )
        + " checks from it)"
    )
    return "\n".join(lines)


def test_check_elim_overhead(benchmark, report):
    from conftest import one_shot

    result = one_shot(benchmark, run_bench)
    OUTPUT.write_text(json.dumps(result, indent=1) + "\n")
    report("checkelim_overhead", format_report(result))
    for name, entry in result["workloads"].items():
        assert entry["checks_removed"] > 0, f"{name}: nothing eliminated"
        assert entry["eliminated_cycles"] < entry["naive_cycles"], name
        # The default tail placement stays the cheapest protected variant.
        assert entry["tails_cycles"] <= entry["eliminated_cycles"], name


def main() -> int:
    result = run_bench()
    OUTPUT.write_text(json.dumps(result, indent=1) + "\n")
    print(format_report(result))
    print(f"\nwrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
