"""Microbenchmarks of the substrate itself (proper pytest-benchmark use).

These time the pieces the experiment costs are made of: frontend
compilation, interpreter throughput, fault-injection runs, feature
extraction, the duplication pass, and one SMO fit.  Useful for spotting
performance regressions in the infrastructure that would silently inflate
every campaign.
"""

import numpy as np
import pytest

from repro import compile_source
from repro.faults import Campaign, injectable_instructions
from repro.features import FeatureExtractor
from repro.interp import Interpreter
from repro.ml import SVC
from repro.protect import FullDuplicationSelector, duplicate_instructions
from repro.workloads import get_workload

KERNEL = """
int n = 200;
output double result[1];
double work(int n) {
    double s = 0.0;
    for (int i = 1; i <= n; i = i + 1) {
        s = s + 1.0 / ((double)i * (double)i);
    }
    return s;
}
void main() { result[0] = work(n); }
"""


def test_frontend_compile(benchmark):
    module = benchmark(lambda: compile_source(KERNEL))
    assert module.static_instruction_count > 10


def test_interpreter_throughput(benchmark):
    interp = Interpreter(compile_source(KERNEL))

    def run():
        result = interp.run()
        assert result.status == "ok"
        return result

    result = benchmark(run)
    assert abs(result.value is None or True)


def test_fault_injection_run(benchmark):
    workload = get_workload("is")
    interp = workload.make_interpreter(1)
    campaign = Campaign(interp, verifier=workload.verifier())
    campaign.prepare()
    import random

    rng = random.Random(0)
    site = campaign.sample_site(rng)
    record = benchmark(lambda: campaign.run_site(site))
    assert record.outcome is not None


def test_feature_extraction(benchmark):
    module = get_workload("hpccg").compile()
    instructions = injectable_instructions(module)

    def extract():
        extractor = FeatureExtractor(module)
        return extractor.extract_many(instructions[:50])

    X = benchmark(extract)
    assert X.shape[1] == 31


def test_duplication_pass(benchmark):
    def protect():
        module = get_workload("hpccg").compile()
        return duplicate_instructions(
            module, FullDuplicationSelector().select(module)
        )

    report = benchmark(protect)
    assert report.duplicated > 0


def test_svm_smo_fit(benchmark):
    rng = np.random.RandomState(0)
    X = rng.randn(300, 31)
    y = (X[:, 0] + 0.5 * X[:, 3] > 1.0).astype(int)

    def fit():
        return SVC(C=100.0, gamma=0.05).fit(X, y)

    model = benchmark(fit)
    assert model.n_support_ > 0
