"""Throughput regression guard for CI.

Loads the committed ``BENCH_campaign.json`` baseline, re-measures serial
campaign throughput on the same workloads with a reduced trial count, and
fails (exit 1) if the measured rate drops below a fraction of the
baseline.  CI machines are slower and noisier than the box that produced
the baseline, so the default tolerance band is generous — the guard
exists to catch order-of-magnitude engine regressions (an accidentally
quadratic loop, a lost fast path), not single-digit drift.

Knobs (environment):

* ``IPAS_BENCH_MIN_RATIO`` — minimum measured/baseline ratio per
  workload (default 0.25).
* ``IPAS_BENCH_TRIALS``    — trials per measurement (default 100).

Run standalone::

    PYTHONPATH=src python benchmarks/check_throughput_regression.py
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

from bench_campaign_throughput import measure

REPO_ROOT = Path(__file__).resolve().parents[1]
BASELINE = REPO_ROOT / "BENCH_campaign.json"

MIN_RATIO = float(os.environ.get("IPAS_BENCH_MIN_RATIO", "0.25"))
TRIALS = int(os.environ.get("IPAS_BENCH_TRIALS", "100"))


def main() -> int:
    if not BASELINE.exists():
        print(f"no baseline at {BASELINE}; nothing to guard", file=sys.stderr)
        return 0
    baseline = json.loads(BASELINE.read_text())
    failures = []
    for name, entry in baseline["workloads"].items():
        base_rate = entry["serial_trials_per_second"]
        if base_rate <= 0:
            continue
        current = measure(name, n_jobs=1, trials=TRIALS)
        rate = current["stats"]["trials_per_second"]
        ratio = rate / base_rate
        status = "ok" if ratio >= MIN_RATIO else "REGRESSED"
        print(
            f"{name:>8}: {rate:8.1f} trials/s vs baseline {base_rate:8.1f} "
            f"(ratio {ratio:.2f}, floor {MIN_RATIO:.2f}) {status}"
        )
        if ratio < MIN_RATIO:
            failures.append(name)
    if failures:
        print(
            f"throughput regression on: {', '.join(failures)} "
            f"(measured < {MIN_RATIO:.0%} of baseline)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
