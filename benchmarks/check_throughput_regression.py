"""Throughput regression guard for CI.

Loads the committed ``BENCH_campaign.json`` baseline, re-measures serial
campaign throughput on the same workloads with a reduced trial count, and
fails (exit 1) if the measured rate drops below a fraction of the
baseline.  CI machines are slower and noisier than the box that produced
the baseline, so the default tolerance band is generous — the guard
exists to catch order-of-magnitude engine regressions (an accidentally
quadratic loop, a lost fast path), not single-digit drift.

A second, machine-independent guard covers the observability layer:
disabled-mode throughput is compared against the committed
``BENCH_warmstart.json`` baseline through the *warm/cold speedup ratio*.
Raw trials/s vary with the machine, but the ratio of warm to cold rate —
both measured back to back on the same box — cancels machine speed, so a
tight band is meaningful: added per-trial fixed cost (the failure mode a
telemetry layer would introduce) shortens warm trials proportionally
more and drags the ratio down.  The band is ``IPAS_WARM_BENCH_TOLERANCE``
(default 0.02: the layer must cost < 2%), with headroom granted when the
measured ratio *exceeds* baseline.

Knobs (environment):

* ``IPAS_BENCH_MIN_RATIO``       — minimum measured/baseline ratio per
  workload (default 0.25).
* ``IPAS_BENCH_TRIALS``          — trials per measurement (default 100).
* ``IPAS_WARM_BENCH_TOLERANCE``  — allowed relative drop of the warm/cold
  speedup ratio vs the warm baseline (default 0.02).
* ``IPAS_WARM_BENCH_TRIALS``     — trials per warm-guard measurement
  (default 100).
* ``IPAS_WARM_BENCH_WORKLOADS`` — comma-separated warm-baseline entries
  to check (default ``fft``; ``all`` = every baseline entry).

Run standalone::

    PYTHONPATH=src python benchmarks/check_throughput_regression.py
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

from bench_campaign_throughput import WARM_REPEATS, measure, measure_warm_pair

REPO_ROOT = Path(__file__).resolve().parents[1]
BASELINE = REPO_ROOT / "BENCH_campaign.json"
WARM_BASELINE = REPO_ROOT / "BENCH_warmstart.json"

MIN_RATIO = float(os.environ.get("IPAS_BENCH_MIN_RATIO", "0.25"))
TRIALS = int(os.environ.get("IPAS_BENCH_TRIALS", "100"))
WARM_TOLERANCE = float(os.environ.get("IPAS_WARM_BENCH_TOLERANCE", "0.02"))
WARM_TRIALS = int(os.environ.get("IPAS_WARM_BENCH_TRIALS", "100"))
WARM_WORKLOADS = os.environ.get("IPAS_WARM_BENCH_WORKLOADS", "fft")


def check_serial_baseline() -> list:
    """Order-of-magnitude guard: measured rate vs committed baseline."""
    if not BASELINE.exists():
        print(f"no baseline at {BASELINE}; nothing to guard", file=sys.stderr)
        return []
    baseline = json.loads(BASELINE.read_text())
    failures = []
    for name, entry in baseline["workloads"].items():
        base_rate = entry["serial_trials_per_second"]
        if base_rate <= 0:
            continue
        current = measure(name, n_jobs=1, trials=TRIALS)
        rate = current["stats"]["trials_per_second"]
        ratio = rate / base_rate
        status = "ok" if ratio >= MIN_RATIO else "REGRESSED"
        print(
            f"{name:>8}: {rate:8.1f} trials/s vs baseline {base_rate:8.1f} "
            f"(ratio {ratio:.2f}, floor {MIN_RATIO:.2f}) {status}"
        )
        if ratio < MIN_RATIO:
            failures.append(name)
    return failures


def check_warm_baseline() -> list:
    """Speedup-ratio guard: disabled-mode overhead < WARM_TOLERANCE."""
    if not WARM_BASELINE.exists():
        print(f"no baseline at {WARM_BASELINE}; skipping warm guard")
        return []
    baseline = json.loads(WARM_BASELINE.read_text())
    if WARM_WORKLOADS.strip().lower() == "all":
        selected = list(baseline["workloads"])
    else:
        selected = [w.strip() for w in WARM_WORKLOADS.split(",") if w.strip()]
    failures = []
    for name in selected:
        entry = baseline["workloads"].get(name)
        if entry is None or entry.get("speedup", 0) <= 0:
            continue
        current = measure_warm_pair(
            name,
            entry["input_id"],
            entry["ladder_rungs"],
            WARM_TRIALS,
            WARM_REPEATS,
        )
        ratio = current["speedup"] / entry["speedup"]
        floor = 1.0 - WARM_TOLERANCE
        status = "ok" if ratio >= floor else "REGRESSED"
        print(
            f"{name:>8}: warm/cold speedup {current['speedup']:.2f}x vs "
            f"baseline {entry['speedup']:.2f}x "
            f"(ratio {ratio:.3f}, floor {floor:.3f}) {status}"
        )
        if ratio < floor:
            failures.append(f"{name} (warm ratio)")
    return failures


def main() -> int:
    failures = check_serial_baseline()
    failures += check_warm_baseline()
    if failures:
        print(
            f"throughput regression on: {', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
