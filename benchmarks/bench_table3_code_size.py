"""Table 3: static instructions and lines of code per workload.

Paper values (LLVM IR / C): CoMD 12240/3036, HPCCG 5107/1313, AMG 4478/952,
FFT 566/249, IS 1457/701.  Our scil ports are scaled down but keep the
shape: CoMD is the largest mini-app, FFT the smallest kernel.
"""

from repro.experiments import banner, format_table
from repro.workloads import all_workloads

from conftest import one_shot


def _compute():
    rows = []
    for workload in all_workloads():
        rows.append(
            [
                workload.name,
                workload.static_instructions(),
                workload.lines_of_code,
            ]
        )
    return rows


def test_table3_code_size(benchmark, report):
    rows = one_shot(benchmark, _compute)
    text = banner("Table 3: static IR instructions and lines of code") + "\n"
    text += format_table(["code", "static instructions", "lines of code"], rows)
    report("table3_code_size", text)

    sizes = {row[0]: row[1] for row in rows}
    loc = {row[0]: row[2] for row in rows}
    # Shape assertions from the paper's Table 3: the kernels are small
    # relative to the largest codes; IS is among the smallest.
    assert sizes["is"] < sizes["comd"]
    assert sizes["is"] < sizes["amg"]
    assert loc["is"] < loc["amg"]
    assert all(count > 100 for count in sizes.values())
