"""Campaign throughput: serial vs parallel trials/sec.

Measures the fault-injection engine's throughput on two workloads with
contrasting trial costs (FFT: short trials; HPCCG: longer stencil trials),
once with ``n_jobs=1`` (in-process loop) and once with ``n_jobs=4``
(forked persistent workers), and writes ``BENCH_campaign.json`` at the
repo root.  The determinism contract is asserted along the way: both
worker counts must produce identical outcome mixes.

Speedup is bounded by the machine: on a single-CPU container the pool
cannot beat the serial loop (the workers time-slice one core and pay the
IPC overhead), so the JSON records ``cpu_count`` next to the numbers.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_campaign_throughput.py

or as part of the benchmark suite (``pytest benchmarks/``).
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path

from repro.faults import Campaign
from repro.workloads import get_workload

REPO_ROOT = Path(__file__).resolve().parents[1]
OUTPUT = REPO_ROOT / "BENCH_campaign.json"

WORKLOADS = ("fft", "hpccg")
TRIALS = 200
SEED = 0
PARALLEL_JOBS = 4


def measure(workload_name: str, n_jobs: int, trials: int = TRIALS) -> dict:
    """One timed campaign; compilation and the golden run stay outside."""
    workload = get_workload(workload_name)
    campaign = Campaign(
        workload.make_interpreter(1),
        verifier=workload.verifier(),
        entry=workload.entry,
        budget_factor=workload.budget_factor,
    )
    campaign.prepare()
    result = campaign.run(trials, seed=SEED, n_jobs=n_jobs)
    return {
        "outcomes": result.counts.as_dict(),
        "stats": result.stats.as_dict(),
    }


def run_bench(trials: int = TRIALS) -> dict:
    report = {
        "trials": trials,
        "seed": SEED,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "workloads": {},
    }
    for name in WORKLOADS:
        serial = measure(name, n_jobs=1, trials=trials)
        parallel = measure(name, n_jobs=PARALLEL_JOBS, trials=trials)
        if serial["outcomes"] != parallel["outcomes"]:
            raise AssertionError(
                f"{name}: outcome mix differs between worker counts — "
                "the determinism contract is broken"
            )
        s_rate = serial["stats"]["trials_per_second"]
        p_rate = parallel["stats"]["trials_per_second"]
        report["workloads"][name] = {
            "serial": serial,
            "parallel": parallel,
            "serial_trials_per_second": s_rate,
            "parallel_trials_per_second": p_rate,
            "parallel_jobs": PARALLEL_JOBS,
            "speedup": p_rate / s_rate if s_rate else 0.0,
        }
    return report


def format_report(report: dict) -> str:
    lines = [
        f"campaign throughput — {report['trials']} trials, "
        f"{report['cpu_count']} CPU(s) visible",
        f"{'workload':>8}  {'serial tr/s':>12}  "
        f"{'x{} tr/s'.format(PARALLEL_JOBS):>12}  {'speedup':>8}  {'util':>5}",
    ]
    for name, entry in report["workloads"].items():
        util = entry["parallel"]["stats"]["worker_utilization"]
        lines.append(
            f"{name:>8}  {entry['serial_trials_per_second']:12.1f}  "
            f"{entry['parallel_trials_per_second']:12.1f}  "
            f"{entry['speedup']:7.2f}x  {util:5.0%}"
        )
    return "\n".join(lines)


def test_campaign_throughput(benchmark, report):
    from conftest import one_shot

    result = one_shot(benchmark, run_bench)
    OUTPUT.write_text(json.dumps(result, indent=1) + "\n")
    report("campaign_throughput", format_report(result))
    for name, entry in result["workloads"].items():
        assert entry["serial_trials_per_second"] > 0
        assert entry["parallel_trials_per_second"] > 0


def main() -> int:
    result = run_bench()
    OUTPUT.write_text(json.dumps(result, indent=1) + "\n")
    print(format_report(result))
    print(f"\nwrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
