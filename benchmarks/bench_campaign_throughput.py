"""Campaign throughput: serial vs parallel trials/sec.

Measures the fault-injection engine's throughput on two workloads with
contrasting trial costs (FFT: short trials; HPCCG: longer stencil trials),
once with ``n_jobs=1`` (in-process loop) and once with ``n_jobs=4``
(forked persistent workers), and writes ``BENCH_campaign.json`` at the
repo root.  The determinism contract is asserted along the way: both
worker counts must produce identical outcome mixes.

Speedup is bounded by the machine: on a single-CPU container the pool
cannot beat the serial loop (the workers time-slice one core and pay the
IPC overhead), so the JSON records ``cpu_count`` next to the numbers.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_campaign_throughput.py

or as part of the benchmark suite (``pytest benchmarks/``).
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path

from repro.faults import Campaign
from repro.workloads import get_workload

REPO_ROOT = Path(__file__).resolve().parents[1]
OUTPUT = REPO_ROOT / "BENCH_campaign.json"

WORKLOADS = ("fft", "hpccg")
#: Warm-start configurations: (workload, input_id, ladder rungs).  Warm
#: speedup grows with input size — the per-trial fixed costs (restore
#: copy, rendezvous compares) amortise over longer suffixes — so the
#: warm bench runs the larger fig8 inputs, where the snapshot ladder
#: clears 3x serial throughput on fft and comd.  ``is`` rides along as
#: the shortest-trial stress case.
WARM_CONFIGS = (("fft", 3, 512), ("comd", 4, 512), ("is", 3, 512))
TRIALS = 200
WARM_TRIALS = 150
#: Best-of-N repeats for the warm bench: cold and warm rates are each
#: the fastest of N runs, which cancels scheduler noise on shared CI
#: boxes (single-shot rates swing ±20% on a one-core container).
WARM_REPEATS = 3
SEED = 0
PARALLEL_JOBS = 4
WARM_OUTPUT = REPO_ROOT / "BENCH_warmstart.json"


def measure(
    workload_name: str, n_jobs: int, trials: int = TRIALS, warm_start: bool = False
) -> dict:
    """One timed campaign; compilation and the golden run stay outside."""
    workload = get_workload(workload_name)
    campaign = Campaign(
        workload.make_interpreter(1),
        verifier=workload.verifier(),
        entry=workload.entry,
        budget_factor=workload.budget_factor,
        warm_start=warm_start,
    )
    campaign.prepare()
    if warm_start:
        # Ladder capture is a one-time golden-run cost shared by every
        # trial; build it outside the timed region like prepare().
        campaign.ensure_ladder()
    result = campaign.run(trials, seed=SEED, n_jobs=n_jobs)
    return {
        "outcomes": result.counts.as_dict(),
        "stats": result.stats.as_dict(),
    }


def run_bench(trials: int = TRIALS) -> dict:
    report = {
        "trials": trials,
        "seed": SEED,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "workloads": {},
    }
    for name in WORKLOADS:
        serial = measure(name, n_jobs=1, trials=trials)
        parallel = measure(name, n_jobs=PARALLEL_JOBS, trials=trials)
        if serial["outcomes"] != parallel["outcomes"]:
            raise AssertionError(
                f"{name}: outcome mix differs between worker counts — "
                "the determinism contract is broken"
            )
        s_rate = serial["stats"]["trials_per_second"]
        p_rate = parallel["stats"]["trials_per_second"]
        report["workloads"][name] = {
            "serial": serial,
            "parallel": parallel,
            "serial_trials_per_second": s_rate,
            "parallel_trials_per_second": p_rate,
            "parallel_jobs": PARALLEL_JOBS,
            "speedup": p_rate / s_rate if s_rate else 0.0,
        }
    return report


def _best_of(campaign, trials: int, repeats: int):
    """Repeat one campaign, return (best result, best trials/s).

    Every repeat must classify identically — a determinism failure here
    means the engine, not the clock, is broken.
    """
    best, best_rate, key = None, 0.0, None
    for _ in range(repeats):
        result = campaign.run(trials, seed=SEED, n_jobs=1)
        k = [(r.outcome, r.status, r.cycles) for r in result.records]
        if key is None:
            key = k
        elif k != key:
            raise AssertionError("repeated runs classified differently")
        rate = result.stats.trials_per_second
        if rate > best_rate:
            best, best_rate = result, rate
    return best, best_rate


def measure_warm_pair(
    name: str, input_id: int, rungs: int, trials: int, repeats: int
) -> dict:
    """Cold vs warm-start serial throughput on one workload input."""
    workload = get_workload(name)

    def build(**kw):
        campaign = Campaign(
            workload.make_interpreter(input_id),
            verifier=workload.verifier(),
            entry=workload.entry,
            budget_factor=workload.budget_factor,
            **kw,
        )
        campaign.prepare()
        return campaign

    cold_campaign = build()
    stride = max(cold_campaign.golden_cycles // rungs, 1)
    warm_campaign = build(warm_start=True, snapshot_stride=stride)
    # Ladder capture and rung signatures are one-time golden-run costs
    # shared by every trial; build them outside the timed region like
    # prepare().
    warm_campaign.ensure_ladder()
    for snap in warm_campaign._ladder.snapshots:
        snap.state_signature()

    cold, c_rate = _best_of(cold_campaign, trials, repeats)
    warm, w_rate = _best_of(warm_campaign, trials, repeats)
    if cold.counts.as_dict() != warm.counts.as_dict():
        raise AssertionError(
            f"{name}: outcome mix differs between cold and warm-start — "
            "the bit-identity contract is broken"
        )
    return {
        "input_id": input_id,
        "ladder_rungs": rungs,
        "snapshot_stride": stride,
        "golden_cycles": cold_campaign.golden_cycles,
        "outcomes": cold.counts.as_dict(),
        "cold": {"stats": cold.stats.as_dict()},
        "warm": {"stats": warm.stats.as_dict()},
        "cold_trials_per_second": c_rate,
        "warm_trials_per_second": w_rate,
        "speedup": w_rate / c_rate if c_rate else 0.0,
    }


def run_warm_bench(trials: int = WARM_TRIALS) -> dict:
    """Cold vs warm-start serial throughput; outcome mixes must match."""
    report = {
        "trials": trials,
        "repeats": WARM_REPEATS,
        "seed": SEED,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "workloads": {},
    }
    for name, input_id, rungs in WARM_CONFIGS:
        report["workloads"][name] = measure_warm_pair(
            name, input_id, rungs, trials, WARM_REPEATS
        )
    return report


def format_warm_report(report: dict) -> str:
    lines = [
        f"warm-start throughput — {report['trials']} serial trials, "
        f"best of {report.get('repeats', 1)}",
        f"{'workload':>8}  {'input':>5}  {'rungs':>5}  {'cold tr/s':>10}  "
        f"{'warm tr/s':>10}  {'speedup':>8}  {'restores':>8}  {'resyncs':>7}",
    ]
    for name, entry in report["workloads"].items():
        warm_stats = entry["warm"]["stats"].get("warm_start", {})
        lines.append(
            f"{name:>8}  {entry.get('input_id', 1):5d}  "
            f"{entry.get('ladder_rungs', 0):5d}  "
            f"{entry['cold_trials_per_second']:10.1f}  "
            f"{entry['warm_trials_per_second']:10.1f}  "
            f"{entry['speedup']:7.2f}x  "
            f"{warm_stats.get('restores', 0):8d}  "
            f"{warm_stats.get('golden_resyncs', 0):7d}"
        )
    return "\n".join(lines)


#: obs-overhead A/B: plain runs vs runs with tracing + metrics attached.
OBS_OUTPUT = REPO_ROOT / "BENCH_obs.json"
OBS_CONFIG = ("fft", 1)
OBS_TRIALS = 150
OBS_REPEATS = 3


def measure_obs_overhead(
    name: str = OBS_CONFIG[0],
    input_id: int = OBS_CONFIG[1],
    trials: int = OBS_TRIALS,
    repeats: int = OBS_REPEATS,
) -> dict:
    """Serial throughput with observability off vs fully on.

    "Off" is the default path — no ``Observation`` at all, the mode every
    ordinary campaign runs in.  "On" attaches a trace writer and a
    metrics dump (one span per trial, JSON flush at close).  Outcomes
    must be bit-identical either way; the enabled overhead is reported as
    a percentage of the disabled rate.
    """
    import tempfile

    from repro.obs import Observation

    workload = get_workload(name)

    def build():
        campaign = Campaign(
            workload.make_interpreter(input_id),
            verifier=workload.verifier(),
            entry=workload.entry,
            budget_factor=workload.budget_factor,
        )
        campaign.prepare()
        return campaign

    plain, plain_rate = _best_of(build(), trials, repeats)

    observed_campaign = build()
    best_observed, observed_rate, key = None, 0.0, None
    with tempfile.TemporaryDirectory() as tmp:
        for i in range(repeats):
            obs = Observation(
                trace_path=os.path.join(tmp, f"trace{i}.json"),
                metrics_path=os.path.join(tmp, f"metrics{i}.json"),
            )
            result = observed_campaign.run(trials, seed=SEED, n_jobs=1, obs=obs)
            k = [(r.outcome, r.status, r.cycles) for r in result.records]
            if key is None:
                key = k
            elif k != key:
                raise AssertionError("observed runs classified differently")
            rate = result.stats.trials_per_second
            if rate > observed_rate:
                best_observed, observed_rate = result, rate
    if plain.counts.as_dict() != best_observed.counts.as_dict():
        raise AssertionError(
            f"{name}: outcome mix differs with observability attached — "
            "the bit-identity contract is broken"
        )
    return {
        "workload": name,
        "input_id": input_id,
        "trials": trials,
        "repeats": repeats,
        "disabled_trials_per_second": plain_rate,
        "enabled_trials_per_second": observed_rate,
        "enabled_overhead_percent": (
            100.0 * (plain_rate - observed_rate) / plain_rate if plain_rate else 0.0
        ),
    }


def format_obs_report(report: dict) -> str:
    return (
        f"observability overhead — {report['workload']} input "
        f"{report['input_id']}, {report['trials']} serial trials, best of "
        f"{report['repeats']}\n"
        f"  disabled: {report['disabled_trials_per_second']:.1f} trials/s\n"
        f"  enabled:  {report['enabled_trials_per_second']:.1f} trials/s "
        f"(trace + metrics; {report['enabled_overhead_percent']:+.1f}%)"
    )


#: fault-model A/B: serial throughput per registered corruption model.
FAULTMODEL_OUTPUT = REPO_ROOT / "BENCH_faultmodels.json"
FAULTMODEL_CONFIG = ("fft", 1)
FAULTMODEL_TRIALS = 120
FAULTMODEL_REPEATS = 3


def run_faultmodel_bench(
    name: str = FAULTMODEL_CONFIG[0],
    input_id: int = FAULTMODEL_CONFIG[1],
    trials: int = FAULTMODEL_TRIALS,
    repeats: int = FAULTMODEL_REPEATS,
) -> dict:
    """Serial throughput for every registered fault model on one workload.

    The ``transient-1bit`` row doubles as a regression guard: the
    pluggable-model layer must not slow the default path, so its rate is
    compared against the fft serial rate recorded in
    ``BENCH_campaign.json`` (when present) and must stay within an
    order-of-magnitude band — wide enough for noisy shared CI boxes,
    tight enough to catch an accidental per-trial recompile.
    """
    from repro.faults.models import FAULT_MODELS

    workload = get_workload(name)

    def build(spec):
        campaign = Campaign(
            workload.make_interpreter(input_id),
            verifier=workload.verifier(),
            entry=workload.entry,
            budget_factor=workload.budget_factor,
            fault_model=spec,
        )
        campaign.prepare()
        return campaign

    report = {
        "kind": "ipas-faultmodel-bench",
        "workload": name,
        "input_id": input_id,
        "trials": trials,
        "repeats": repeats,
        "seed": SEED,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "models": {},
    }
    for spec in FAULT_MODELS:
        result, rate = _best_of(build(spec), trials, repeats)
        report["models"][spec] = {
            "trials_per_second": rate,
            "outcomes": result.counts.as_dict(),
        }

    default_rate = report["models"]["transient-1bit"]["trials_per_second"]
    reference = None
    if OUTPUT.exists():
        try:
            recorded = json.loads(OUTPUT.read_text())
            reference = recorded["workloads"][name]["serial_trials_per_second"]
        except (ValueError, KeyError):
            reference = None
    report["reference_trials_per_second"] = reference
    if reference:
        ratio = default_rate / reference
        report["default_vs_reference"] = ratio
        if ratio < 0.1:
            raise AssertionError(
                f"transient-1bit throughput regressed an order of magnitude "
                f"vs BENCH_campaign.json ({default_rate:.1f} vs "
                f"{reference:.1f} trials/s)"
            )
    return report


def format_faultmodel_report(report: dict) -> str:
    lines = [
        f"fault-model throughput — {report['workload']} input "
        f"{report['input_id']}, {report['trials']} serial trials, best of "
        f"{report['repeats']}",
        f"{'model':>22}  {'trials/s':>9}",
    ]
    for spec, entry in report["models"].items():
        lines.append(f"{spec:>22}  {entry['trials_per_second']:9.1f}")
    if report.get("reference_trials_per_second"):
        lines.append(
            f"  default vs BENCH_campaign.json reference: "
            f"{report['default_vs_reference']:.2f}x"
        )
    return "\n".join(lines)


def format_report(report: dict) -> str:
    lines = [
        f"campaign throughput — {report['trials']} trials, "
        f"{report['cpu_count']} CPU(s) visible",
        f"{'workload':>8}  {'serial tr/s':>12}  "
        f"{'x{} tr/s'.format(PARALLEL_JOBS):>12}  {'speedup':>8}  {'util':>5}",
    ]
    for name, entry in report["workloads"].items():
        util = entry["parallel"]["stats"]["worker_utilization"]
        lines.append(
            f"{name:>8}  {entry['serial_trials_per_second']:12.1f}  "
            f"{entry['parallel_trials_per_second']:12.1f}  "
            f"{entry['speedup']:7.2f}x  {util:5.0%}"
        )
    return "\n".join(lines)


def test_campaign_throughput(benchmark, report):
    from conftest import one_shot

    result = one_shot(benchmark, run_bench)
    OUTPUT.write_text(json.dumps(result, indent=1) + "\n")
    report("campaign_throughput", format_report(result))
    for name, entry in result["workloads"].items():
        assert entry["serial_trials_per_second"] > 0
        assert entry["parallel_trials_per_second"] > 0


def test_warmstart_throughput(benchmark, report):
    from conftest import one_shot

    result = one_shot(benchmark, run_warm_bench)
    WARM_OUTPUT.write_text(json.dumps(result, indent=1) + "\n")
    report("warmstart_throughput", format_warm_report(result))
    for name, entry in result["workloads"].items():
        assert entry["cold_trials_per_second"] > 0
        assert entry["warm_trials_per_second"] > 0


def test_faultmodel_throughput(benchmark, report):
    from conftest import one_shot

    result = one_shot(benchmark, run_faultmodel_bench)
    FAULTMODEL_OUTPUT.write_text(json.dumps(result, indent=1) + "\n")
    report("faultmodel_throughput", format_faultmodel_report(result))
    for spec, entry in result["models"].items():
        assert entry["trials_per_second"] > 0


def test_obs_overhead(benchmark, report):
    from conftest import one_shot

    result = one_shot(benchmark, measure_obs_overhead)
    OBS_OUTPUT.write_text(json.dumps(result, indent=1) + "\n")
    report("obs_overhead", format_obs_report(result))
    assert result["disabled_trials_per_second"] > 0
    assert result["enabled_trials_per_second"] > 0


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if "--fault-model" in argv:
        result = run_faultmodel_bench()
        FAULTMODEL_OUTPUT.write_text(json.dumps(result, indent=1) + "\n")
        print(format_faultmodel_report(result))
        print(f"\nwrote {FAULTMODEL_OUTPUT}")
    elif "--obs-overhead" in argv:
        result = measure_obs_overhead()
        OBS_OUTPUT.write_text(json.dumps(result, indent=1) + "\n")
        print(format_obs_report(result))
        print(f"\nwrote {OBS_OUTPUT}")
    elif "--warm-start" in argv:
        result = run_warm_bench()
        WARM_OUTPUT.write_text(json.dumps(result, indent=1) + "\n")
        print(format_warm_report(result))
        print(f"\nwrote {WARM_OUTPUT}")
    else:
        result = run_bench()
        OUTPUT.write_text(json.dumps(result, indent=1) + "\n")
        print(format_report(result))
        print(f"\nwrote {OUTPUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
