#!/usr/bin/env python
"""Quickstart: protect a small kernel with IPAS, end to end.

Walks the four steps of the paper's Fig. 1 on a 40-line scil kernel:

1. define the program and its output-verification routine,
2. collect fault-injection training data,
3. train the SVM classifier (grid-searched by the Eq.-1 F-score),
4. duplicate the predicted SOC-generating instructions,

then injects faults into the protected program to show the checks firing.

Run:  python examples/quickstart.py
"""

import random

from repro import compile_source
from repro.core import ExperimentScale, IpasPipeline
from repro.faults import Campaign, Outcome
from repro.interp import Interpreter
from repro.workloads.base import Workload


# -- Step 0: a small scientific kernel in scil --------------------------------
# It computes a dot-product-based norm; `output` globals are what the
# verification routine inspects.

KERNEL_SOURCE = """
int n = 24;
output double result[2];

double norm2(double a[], int n) {
    double s = 0.0;
    for (int i = 0; i < n; i = i + 1) {
        s = s + a[i] * a[i];
    }
    return s;
}

void main() {
    double x[32];
    for (int i = 0; i < n; i = i + 1) {
        x[i] = 1.0 / (double)(i + 1);
    }
    double s = norm2(x, n);
    result[0] = s;
    result[1] = sqrt(s);
}
"""


class QuickstartWorkload(Workload):
    """A Workload bundles the program, its inputs, and its verifier."""

    name = "quickstart"
    description = "dot-product norm kernel"
    source = KERNEL_SOURCE
    inputs = {1: {"n": 24}, 2: {"n": 28}, 3: {"n": 30}, 4: {"n": 32}}
    input_labels = {1: "n=24", 2: "n=28", 3: "n=30", 4: "n=32"}
    # Default verifier: outputs must match the golden run exactly.
    # Real workloads use tolerance/energy/sortedness checks (see
    # repro.workloads) — that is the paper's Table 2.


def main() -> None:
    workload = QuickstartWorkload()
    scale = ExperimentScale(
        train_samples=200, grid_configs=16, eval_trials=100, top_n=3
    )

    print("== Step 1-2: fault-injection campaign (training data) ==")
    pipeline = IpasPipeline(workload, scale)
    data = pipeline.collect_training_data()
    print(f"  {len(data)} injected faults on the training input")
    print(f"  outcome mix: {data.campaign.counts}")
    print(f"  SOC-generating fraction: {data.positive_fraction:.1%}")

    print("\n== Step 3: train the classifier (SVM grid search) ==")
    configs = pipeline.train()
    for tc in configs:
        print(f"  {tc.config}")

    print("\n== Step 4: protect with the best configuration ==")
    variant = pipeline.protect(configs[0])
    report = variant.report
    print(
        f"  duplicated {report.duplicated}/{report.eligible} eligible "
        f"instructions ({report.duplicated_fraction:.1%}), "
        f"{report.checks_inserted} checks inserted"
    )

    print("\n== The protected program still computes the same answer ==")
    clean = workload.make_interpreter(1)
    clean_result = clean.run()
    protected = workload.make_interpreter(1, module=variant.module)
    protected_result = protected.run()
    print(f"  clean:     result = {clean.read_global('result')}")
    print(f"  protected: result = {protected.read_global('result')}")
    slowdown = protected_result.cycles / clean_result.cycles
    print(f"  slowdown: {slowdown:.2f}x")

    print("\n== Injecting faults into the protected program ==")
    campaign = Campaign(protected, verifier=workload.verifier())
    result = campaign.run(100, seed=7)
    for outcome in Outcome:
        print(f"  {outcome.value:>9}: {result.counts.counts[outcome]:3d} / 100")

    unprotected_campaign = Campaign(
        workload.make_interpreter(1), verifier=workload.verifier()
    )
    unprotected = unprotected_campaign.run(100, seed=7)
    print(
        f"\n  SOC: {unprotected.counts.soc_fraction:.0%} unprotected -> "
        f"{result.counts.soc_fraction:.0%} protected"
    )


if __name__ == "__main__":
    main()
