#!/usr/bin/env python
"""Protect an OpenMP-style parallel code (paper §4.4.1).

OpenMP compilers outline each parallel region into a function invoked once
per thread by the runtime.  IPAS is safe under this lowering because it
never duplicates calls or control flow — this example shows a protected
outlined region computing the right answer on shared memory at several
thread counts, with flat slowdown (the Fig.-8 argument applied to threads).

Run:  python examples/openmp_region.py
"""

from repro import compile_source
from repro.core import ExperimentScale, IpasPipeline
from repro.parallel import OmpRuntime
from repro.workloads.base import Workload

SOURCE = """
// A stencil relaxation written OpenMP-style: setup + outlined region.
int n = 128;
int sweeps = 4;
output double checksum[1];
double grid[128];
double next[128];

void setup() {
    for (int i = 0; i < n; i = i + 1) {
        grid[i] = (double)(i % 7) * 0.25;
    }
}

// Outlined parallel region: one Jacobi sweep over a block of rows.
void sweep_region(int tid, int nthreads) {
    int chunk = (n + nthreads - 1) / nthreads;
    int lo = tid * chunk;
    int hi = lo + chunk;
    if (hi > n) { hi = n; }
    if (lo > n) { lo = n; }
    for (int i = lo; i < hi; i = i + 1) {
        double left = 0.0;
        double right = 0.0;
        if (i > 0) { left = grid[i - 1]; }
        if (i < n - 1) { right = grid[i + 1]; }
        next[i] = 0.25 * left + 0.5 * grid[i] + 0.25 * right;
    }
}

void commit_region(int tid, int nthreads) {
    int chunk = (n + nthreads - 1) / nthreads;
    int lo = tid * chunk;
    int hi = lo + chunk;
    if (hi > n) { hi = n; }
    if (lo > n) { lo = n; }
    for (int i = lo; i < hi; i = i + 1) { grid[i] = next[i]; }
}

void finish() {
    double acc = 0.0;
    for (int i = 0; i < n; i = i + 1) { acc = acc + grid[i]; }
    checksum[0] = acc;
}
"""


class StencilWorkload(Workload):
    name = "omp-stencil"
    description = "OpenMP-style Jacobi relaxation"
    source = SOURCE
    inputs = {1: {"n": 128}, 2: {"n": 128}, 3: {"n": 128}, 4: {"n": 128}}
    input_labels = {i: "n=128" for i in (1, 2, 3, 4)}
    entry = "main"


def run_stencil(module, nthreads):
    runtime = OmpRuntime(module, nthreads)
    runtime.start()
    runtime.run_serial("setup")
    sweeps = runtime.read_global("sweeps")
    for _ in range(sweeps):
        assert runtime.run_region("sweep_region").status == "ok"
        assert runtime.run_region("commit_region").status == "ok"
    runtime.run_serial("finish")
    return runtime


def main() -> None:
    clean_module = compile_source(SOURCE)

    # For protection, reuse the IPAS machinery: the stencil has no natural
    # verification main(), so protect with a classifier trained on HPCCG —
    # stencils look alike in feature space (see bench_cross_workload.py).
    from repro.experiments import get_pipeline

    print("training a stencil-flavoured classifier (HPCCG campaign) ...")
    pipeline = get_pipeline("hpccg", ExperimentScale.preset("quick"))
    trained = pipeline.train()[0]
    protected_module = compile_source(SOURCE)
    from repro.protect import IpasSelector, duplicate_instructions

    report = duplicate_instructions(
        protected_module, IpasSelector(trained.model, trained.scaler).select(protected_module)
    )
    print(f"  duplicated {report.duplicated_fraction:.0%} of eligible instructions\n")

    print(f"{'threads':>8}  {'clean cycles':>13}  {'protected':>13}  slowdown  checksum ok")
    reference = None
    for nthreads in (1, 2, 4, 8):
        clean = run_stencil(clean_module, nthreads)
        prot = run_stencil(protected_module, nthreads)
        checksum = clean.read_global("checksum")[0]
        if reference is None:
            reference = checksum
        ok = (
            abs(checksum - reference) < 1e-12
            and abs(prot.read_global("checksum")[0] - reference) < 1e-12
        )
        print(
            f"{nthreads:>8}  {clean.job_cycles:>13}  {prot.job_cycles:>13}  "
            f"{prot.job_cycles / clean.job_cycles:.3f}x  {ok}"
        )


if __name__ == "__main__":
    main()
