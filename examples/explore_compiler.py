#!/usr/bin/env python
"""Tour of the compiler substrate: frontend, IR, analyses, passes.

Shows the stages a scil program goes through before IPAS ever sees it:
lexing/parsing/sema, IR codegen (Clang-style alloca form), the standard
optimization pipeline (mem2reg, constant folding, CFG simplification, DCE),
the analyses the feature extractor uses (dominators, loops, slicing), and
finally what the duplication pass inserts.

Run:  python examples/explore_compiler.py
"""

from repro.analysis import DominatorTree, LoopInfo, forward_slice
from repro.faults import injectable_instructions
from repro.features import FEATURE_NAMES, FeatureExtractor
from repro.frontend import analyze, generate, parse
from repro.ir import print_function, print_module, verify_module
from repro.passes import optimize_module
from repro.protect import FullDuplicationSelector, duplicate_instructions

SOURCE = """
// Sum of squares with an early exit: enough structure for every stage.
int n = 10;
output double result[1];

double sum_squares(int n) {
    double acc = 0.0;
    for (int i = 1; i <= n; i = i + 1) {
        double term = (double)i * (double)i;
        if (term > 1000.0) { break; }
        acc = acc + term;
    }
    return acc;
}

void main() {
    result[0] = sum_squares(n);
}
"""


def section(title: str) -> None:
    print(f"\n{'=' * 64}\n{title}\n{'=' * 64}")


def main() -> None:
    section("1. Parse + semantic analysis")
    program = analyze(parse(SOURCE))
    print(f"globals:   {[g.name for g in program.globals]}")
    print(f"functions: {[f.name for f in program.functions]}")

    section("2. IR codegen (Clang-style: allocas + loads/stores)")
    module = generate(program, "tour")
    verify_module(module)
    print(print_function(module.get_function("sum_squares")))

    section("3. After the standard pipeline (mem2reg et al.)")
    optimize_module(module)
    fn = module.get_function("sum_squares")
    print(print_function(fn))
    opcodes = sorted({i.opcode for i in fn.instructions()})
    print(f"\nremaining opcodes: {opcodes}")
    assert "alloca" not in opcodes, "scalars now live in SSA registers"

    section("4. Analyses behind the Table-1 features")
    dom = DominatorTree(fn)
    loops = LoopInfo(fn, dom)
    print(f"blocks: {[b.name for b in fn.blocks]}")
    print(f"loops detected: {len(loops)}")
    for loop in loops.loops:
        print(f"  header={loop.header.name} body={sorted(b.name for b in loop.blocks)}")
    fmul = next(i for i in fn.instructions() if i.opcode == "fmul")
    sliced = forward_slice(fmul)
    print(f"forward slice of the multiply: {len(sliced)} instructions")

    extractor = FeatureExtractor(module)
    vector = extractor.extract(fmul)
    print("\nfeature vector of the multiply (nonzero entries):")
    for name, value in zip(FEATURE_NAMES, vector):
        if value:
            print(f"  {name:>28} = {value:g}")

    section("5. What full duplication inserts")
    report = duplicate_instructions(
        module, FullDuplicationSelector().select(module)
    )
    print(
        f"duplicated {report.duplicated} instructions, "
        f"{report.paths} duplication paths, "
        f"{report.checks_inserted} checks"
    )
    print()
    print(print_function(module.get_function("sum_squares")))

    section("6. Injectable instructions under the fault model")
    eligible = injectable_instructions(module)
    by_opcode = {}
    for inst in eligible:
        by_opcode[inst.opcode] = by_opcode.get(inst.opcode, 0) + 1
    for opcode, count in sorted(by_opcode.items()):
        print(f"  {opcode:>8}: {count}")


if __name__ == "__main__":
    main()
