#!/usr/bin/env python
"""Protect the HPCCG mini-app with IPAS and evaluate the protection.

Reproduces one column of the paper's evaluation for a single workload:
unprotected vs full duplication vs the best IPAS configuration, reporting
outcome coverage (Fig. 5), SOC reduction and slowdown (Fig. 6 / Table 4),
and the fraction of duplicated instructions (Fig. 7).

Run:  python examples/protect_hpccg.py          (a few minutes)
      IPAS_SCALE=quick python examples/protect_hpccg.py   (fast smoke run)
"""

from repro.core import (
    ExperimentScale,
    IpasPipeline,
    evaluate_unprotected,
    evaluate_variant,
    ideal_point_best,
)
from repro.protect import FullDuplicationSelector, duplicate_instructions
from repro.core.pipeline import ProtectedVariant
from repro.workloads import get_workload


def main() -> None:
    workload = get_workload("hpccg")
    scale = ExperimentScale.from_env()
    print(f"workload: {workload.description}")
    print(f"scale:    {scale!r}\n")

    print("collecting training data + training classifiers ...")
    pipeline = IpasPipeline(workload, scale)
    variants = pipeline.protect_all()
    print(f"  training outcomes: {pipeline.collect_training_data().campaign.counts}")
    print(f"  training time: {pipeline.training_seconds:.1f}s\n")

    print("evaluating unprotected reference ...")
    unprotected = evaluate_unprotected(workload, scale.eval_trials, seed=99)
    print(
        f"  SOC: {unprotected.soc_fraction:.1%}  "
        f"masked: {unprotected.counts.masked_fraction:.1%}  "
        f"symptoms: {unprotected.counts.symptom_fraction:.1%}\n"
    )

    print("evaluating full duplication ...")
    full_module = workload.compile()
    full_report = duplicate_instructions(
        full_module, FullDuplicationSelector().select(full_module)
    )
    full = evaluate_variant(
        full_module,
        workload,
        unprotected.soc_fraction,
        unprotected.golden_cycles,
        "full",
        "-",
        scale.eval_trials,
        seed=99,
        duplicated_fraction=full_report.duplicated_fraction,
    )
    print(
        f"  SOC reduction: {full.soc_reduction:5.1f}%   "
        f"slowdown: {full.slowdown:.2f}x   "
        f"duplicated: {full.duplicated_fraction:.0%}\n"
    )

    print(f"evaluating the top-{len(variants)} IPAS configurations ...")
    evaluations = []
    for i, variant in enumerate(variants):
        evaluation = evaluate_variant(
            variant.module,
            workload,
            unprotected.soc_fraction,
            unprotected.golden_cycles,
            "ipas",
            f"cfg{i+1}",
            scale.eval_trials,
            seed=99,
            duplicated_fraction=variant.report.duplicated_fraction,
        )
        evaluations.append(evaluation)
        print(
            f"  cfg{i+1} (C={variant.config.C:g}, gamma={variant.config.gamma:g}): "
            f"reduction {evaluation.soc_reduction:5.1f}%  "
            f"slowdown {evaluation.slowdown:.2f}x  "
            f"duplicated {evaluation.duplicated_fraction:.0%}"
        )

    best = ideal_point_best(evaluations)
    print(
        f"\nbest by ideal-point criterion: {best.config_label} — "
        f"{best.soc_reduction:.1f}% SOC reduction at {best.slowdown:.2f}x "
        f"(paper Table 4 HPCCG: 81.42% at 1.18x)"
    )


if __name__ == "__main__":
    main()
