#!/usr/bin/env python
"""Bring your own kernel: define a workload + verification, protect it.

The paper's workflow is user-guided: *you* supply the program and the
routine that decides whether its output is scientifically acceptable
(paper Fig. 1, step 1).  This example protects a trapezoidal-rule
integrator whose verification is a pure mathematical property — the
integral of sin over [0, pi] is exactly 2 — so no golden run is needed,
like the paper's AMG/HPCCG style of verification.

Run:  python examples/custom_workload.py
"""

from repro.core import ExperimentScale, IpasPipeline
from repro.faults import Campaign, Outcome
from repro.interp import Interpreter
from repro.workloads.base import OutputVerifier, Workload

SOURCE = """
// Trapezoidal integration of sin(x) over [0, pi].
int param_intervals = 48;
output double integral[1];

double f(double x) {
    return sin(x);
}

void main() {
    int n = param_intervals;
    double pi = 3.141592653589793;
    double h = pi / (double)n;
    double acc = 0.5 * (f(0.0) + f(pi));
    for (int i = 1; i < n; i = i + 1) {
        acc = acc + f(h * (double)i);
    }
    integral[0] = acc * h;
}
"""


class IntegralVerifier(OutputVerifier):
    """Accept iff the computed integral is near the exact answer (2.0).

    Trapezoid error is O(h^2) ~ 1.7e-3 at 48 intervals, so a 1e-2 window
    accepts legitimate discretisation error and small masked faults while
    rejecting genuine output corruption.
    """

    EXACT = 2.0
    TOLERANCE = 1e-2

    def capture(self, interp: Interpreter):
        return {}

    def check(self, interp: Interpreter, golden) -> bool:
        value = interp.read_global("integral")[0]
        try:
            diff = abs(float(value) - self.EXACT)
        except (TypeError, ValueError, OverflowError):
            return False
        return diff == diff and diff <= self.TOLERANCE


class IntegratorWorkload(Workload):
    name = "trapezoid"
    description = "trapezoidal-rule integrator with an exact-answer check"
    source = SOURCE
    inputs = {
        1: {"param_intervals": 48},
        2: {"param_intervals": 96},
        3: {"param_intervals": 192},
        4: {"param_intervals": 384},
    }
    input_labels = {1: "48 intervals", 2: "96", 3: "192", 4: "384"}

    def verifier(self) -> OutputVerifier:
        return IntegralVerifier()


def main() -> None:
    workload = IntegratorWorkload()
    interp = workload.make_interpreter(1)
    result = interp.run()
    print(f"clean run: integral = {interp.read_global('integral')[0]:.6f} "
          f"(exact 2.0), {result.cycles} cycles")

    scale = ExperimentScale(train_samples=250, grid_configs=16, eval_trials=120, top_n=3)
    pipeline = IpasPipeline(workload, scale)
    print("\ntraining IPAS on the integrator ...")
    variant = pipeline.protect_all()[0]
    print(f"  campaign: {pipeline.collect_training_data().campaign.counts}")
    print(f"  best config: {variant.config}")
    print(f"  duplicated {variant.report.duplicated_fraction:.0%} of eligible instructions")

    print("\ncomparing SOC under injection (120 faults each) ...")
    for label, module in (("unprotected", workload.compile()), ("IPAS", variant.module)):
        campaign = Campaign(
            workload.make_interpreter(1, module=module),
            verifier=workload.verifier(),
        )
        outcome = campaign.run(120, seed=3)
        print(
            f"  {label:>11}: SOC {outcome.counts.soc_fraction:.1%}  "
            f"detected {outcome.counts.detected_fraction:.1%}  "
            f"masked {outcome.counts.masked_fraction:.1%}"
        )

    print("\nprotection transfers to a larger input (paper Fig. 9 style):")
    big = workload.make_interpreter(3, module=variant.module)
    campaign = Campaign(big, verifier=workload.verifier())
    outcome = campaign.run(120, seed=4)
    print(
        f"  input 3 (192 intervals): SOC {outcome.counts.soc_fraction:.1%}, "
        f"detected {outcome.counts.detected_fraction:.1%}"
    )


if __name__ == "__main__":
    main()
