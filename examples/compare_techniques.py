#!/usr/bin/env python
"""Compare protection techniques on the FFT kernel.

Puts four policies side by side on identical fault campaigns:

* unprotected,
* full duplication (SWIFT-style),
* Shoestring-style baseline (protect predicted non-symptom instructions),
* IPAS (protect predicted SOC-generating instructions),

and prints a Fig. 5/6-style comparison.  The point the paper makes — and
this script reproduces — is that IPAS gets comparable SOC reduction for a
fraction of the duplication (and thus of the slowdown).

Run:  IPAS_SCALE=quick python examples/compare_techniques.py
"""

from repro.core import (
    ExperimentScale,
    IpasPipeline,
    LABEL_SOC,
    LABEL_SYMPTOM,
    collect_data,
    evaluate_unprotected,
    evaluate_variant,
)
from repro.core.pipeline import ProtectedVariant
from repro.experiments.reporting import format_table, percent
from repro.protect import FullDuplicationSelector, duplicate_instructions
from repro.workloads import get_workload


def main() -> None:
    workload = get_workload("fft")
    scale = ExperimentScale.from_env()
    print(f"workload: {workload.description}")
    print(f"scale:    {scale!r}\n")

    # One shared training campaign for both learned techniques.
    print("fault-injection campaign for training ...")
    collected = collect_data(workload, scale.train_samples, seed=0)
    print(f"  {collected.campaign.counts}\n")

    variants = {}
    for labeling, label in ((LABEL_SOC, "IPAS"), (LABEL_SYMPTOM, "Baseline")):
        pipeline = IpasPipeline(workload, scale, labeling, collected=collected)
        best = pipeline.train()[0]
        variants[label] = pipeline.protect(best)

    full_module = workload.compile()
    full_report = duplicate_instructions(
        full_module, FullDuplicationSelector().select(full_module)
    )
    variants["Full dup."] = ProtectedVariant(
        full_module, full_report, "full", None, 0.0
    )

    print("evaluation campaigns ...")
    unprotected = evaluate_unprotected(workload, scale.eval_trials, seed=55)
    rows = [
        [
            "unprotected",
            "0%",
            percent(unprotected.counts.detected_fraction),
            percent(unprotected.soc_fraction),
            "-",
            "1.00x",
        ]
    ]
    for label, variant in variants.items():
        evaluation = evaluate_variant(
            variant.module,
            workload,
            unprotected.soc_fraction,
            unprotected.golden_cycles,
            label,
            "-",
            scale.eval_trials,
            seed=55,
            duplicated_fraction=variant.report.duplicated_fraction,
        )
        rows.append(
            [
                label,
                percent(variant.report.duplicated_fraction, 0),
                percent(evaluation.counts.detected_fraction),
                percent(evaluation.soc_fraction),
                f"{evaluation.soc_reduction:.1f}%",
                f"{evaluation.slowdown:.2f}x",
            ]
        )

    print()
    print(
        format_table(
            ["technique", "duplicated", "detected", "SOC", "SOC reduction", "slowdown"],
            rows,
        )
    )
    print(
        "\npaper Table 4, FFT: IPAS 90.0% reduction at 1.35x; "
        "Baseline 88.5% at 1.81x."
    )


if __name__ == "__main__":
    main()
