#!/usr/bin/env python
"""Run a protected workload under the simulated MPI runtime (paper §6.4).

Protects CoMD with IPAS, then runs the protected and unprotected programs
SPMD at 1-8 ranks and reports the strong-scaling slowdown curve — the
paper's Fig. 8 claim is that it stays flat, because IPAS never instruments
communication.

Also demonstrates the failure semantics of §4.4.1: a fault detected on one
rank aborts the whole job (an observable system-level symptom).

Run:  IPAS_SCALE=quick python examples/mpi_scaling.py
"""

import random

from repro.core import ExperimentScale, IpasPipeline
from repro.faults import Campaign
from repro.parallel import MpiJob
from repro.workloads import get_workload


def main() -> None:
    workload = get_workload("comd")
    scale = ExperimentScale.from_env()
    print(f"workload: {workload.description}")

    print("\ntraining IPAS ...")
    pipeline = IpasPipeline(workload, scale)
    variant = pipeline.protect_all()[0]
    print(f"  best config: {variant.config}")
    print(f"  duplicated {variant.report.duplicated_fraction:.0%} of eligible instructions")

    clean_module = workload.compile()
    print("\nstrong scaling (fault-free):")
    print(f"  {'ranks':>5}  {'clean cycles':>14}  {'protected cycles':>17}  slowdown")
    for ranks in (1, 2, 4, 8):
        clean = MpiJob(clean_module, ranks, overrides=workload.inputs[1]).run()
        prot = MpiJob(variant.module, ranks, overrides=workload.inputs[1]).run()
        assert clean.status == "ok" and prot.status == "ok"
        slowdown = prot.job_cycles / clean.job_cycles
        print(
            f"  {ranks:>5}  {clean.job_cycles:>14}  {prot.job_cycles:>17}  "
            f"{slowdown:.3f}x"
        )

    print("\nfault detected on one rank aborts the job (paper §4.4.1):")
    # Pick an instruction that the classifier protected (it feeds an
    # ipas.check) and flip a high bit mid-run on rank 1 of a 4-rank job.
    from repro.ir import is_check_intrinsic

    protected_job = MpiJob(variant.module, 4, overrides=workload.inputs[1])
    target = next(
        inst
        for inst in variant.module.instructions()
        if inst.type.is_float()
        and not inst.name.endswith(".dup")
        and any(
            u.opcode == "call" and is_check_intrinsic(u.callee)
            for u in inst.users
        )
    )
    result = protected_job.run(injection=((target, 2, 62), 1))
    print(f"  job status: {result.status}")
    print(f"  per-rank:   {result.statuses}")


if __name__ == "__main__":
    main()
