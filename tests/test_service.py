"""Campaign-as-a-service suite: coordinator, workers, journal, chaos.

The service's contract extends the parallel engine's: outcome records a
coordinator commits — through socket workers, through its own serial
fallback, across dropped acks, delayed replies, connection resets, and a
kill/restart of the coordinator itself — are bit-identical to a cold
in-process campaign.  These tests assert that contract end to end, plus
the at-most-once commit gate and the write-ahead job journal underneath.
"""

import asyncio
import json
import os
import socket
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro import compile_source
from repro.faults import Campaign
from repro.faults.chaos import (
    CHAOS_EXIT_CODE,
    ServiceChaos,
    parse_service_chaos_spec,
    validate_service_chaos_spec,
)
from repro.faults.parallel import trial_entry
from repro.interp import Interpreter
from repro.service import CoordinatorServer, JobJournal, ServiceClient, ServiceError
from repro.service.client import parse_connect, read_port_file
from repro.service.jobs import build_campaign, canonical_spec, validate_spec
from repro.service.protocol import ProtocolError
from repro.service.worker import run_worker

KERNEL = """
int n = 12;
output double result[4];

double work(double a[], int n) {
    double s = 0.0;
    for (int i = 0; i < n; i = i + 1) {
        s = s + a[i] * a[i];
    }
    return sqrt(s);
}

void main() {
    double x[16];
    for (int i = 0; i < n; i = i + 1) { x[i] = (double)(i + 1); }
    result[0] = work(x, n);
    result[1] = (double)n;
}
"""

N_TRIALS = 24
SEED = 11


def make_spec(**overrides):
    spec = {"source": KERNEL, "name": "kernel", "trials": N_TRIALS, "seed": SEED}
    spec.update(overrides)
    return spec


@pytest.fixture(scope="module")
def baseline_entries():
    """The cold in-process campaign, as canonical wire entries."""
    campaign = Campaign(Interpreter(compile_source(KERNEL, name="kernel")))
    result = campaign.run(N_TRIALS, seed=SEED)
    index_of = {id(inst): k for k, (inst, _c) in enumerate(campaign._sites)}
    return [
        trial_entry(i, r.site, index_of[id(r.site.instruction)], r)
        for i, r in enumerate(result.records)
    ]


class ServerThread:
    """A coordinator on its own event loop in a daemon thread."""

    def __init__(self, journal_dir, **kwargs):
        self.server = CoordinatorServer(journal_dir, **kwargs)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.started = threading.Event()
        self.error = None

    def _run(self):
        asyncio.set_event_loop(self.loop)
        try:
            self.loop.run_until_complete(self.server.start())
        except BaseException as exc:  # surfaced by start()
            self.error = exc
            self.started.set()
            self.loop.close()
            return
        self.started.set()
        self.loop.run_until_complete(self.server.wait_closed())
        self.loop.run_until_complete(self.loop.shutdown_asyncgens())
        self.loop.run_until_complete(self.loop.shutdown_default_executor())
        self.loop.close()

    def start(self):
        self.thread.start()
        assert self.started.wait(30), "coordinator failed to start"
        if self.error is not None:
            raise self.error
        return self.server.port

    def stop(self):
        if self.thread.is_alive():
            try:
                asyncio.run_coroutine_threadsafe(self.server.stop(), self.loop)
            except RuntimeError:
                pass
        self.thread.join(30)
        assert not self.thread.is_alive(), "coordinator thread leaked"


@pytest.fixture
def serve(tmp_path):
    """Factory: start a coordinator; all started servers stop at teardown."""
    servers = []

    def _serve(**kwargs):
        kwargs.setdefault("solo_grace", 0.05)
        st = ServerThread(str(tmp_path / "journal"), **kwargs)
        st.start()
        servers.append(st)
        return st

    yield _serve
    for st in servers:
        st.stop()


def robust_wait(port, job, timeout=60.0):
    """Poll job state with a fresh connection per poll; chaos-tolerant."""
    deadline = time.monotonic() + timeout
    last = None
    while time.monotonic() < deadline:
        try:
            with ServiceClient(port=port, timeout=5.0) as client:
                last = client.status(job)
                if last.get("state") in ("done", "failed"):
                    return last
        except (ServiceError, OSError, ProtocolError):
            pass
        time.sleep(0.05)
    raise TimeoutError(f"job {job} not terminal after {timeout}s (last: {last})")


def robust_results(port, job):
    for _ in range(40):
        try:
            with ServiceClient(port=port, timeout=10.0) as client:
                return client.results(job)
        except (ServiceError, OSError, ProtocolError):
            time.sleep(0.05)
    raise TimeoutError(f"could not fetch results for {job}")


def start_worker(port, **kwargs):
    """run_worker in a daemon thread; returns a dict with its exit code."""
    kwargs.setdefault("ack_timeout", 5.0)
    kwargs.setdefault("reconnect_attempts", 40)
    out = {"code": None}

    def _run():
        out["code"] = run_worker("127.0.0.1", port, **kwargs)

    thread = threading.Thread(target=_run, daemon=True)
    thread.start()
    out["thread"] = thread
    return out


class TestSoloExecution:
    def test_solo_run_bit_identical(self, serve, baseline_entries):
        st = serve()
        with ServiceClient(port=st.server.port) as client:
            reply = client.submit(make_spec())
            assert reply["disposition"] == "submitted"
            job = reply["job"]
            status = client.wait(job)
            assert status["state"] == "done"
            assert client.results(job) == baseline_entries
            metrics = client.metrics()
        solo = metrics["ipas_service_solo_trials_total"]["samples"][0]["value"]
        assert solo == N_TRIALS

    def test_resubmit_is_cached_and_identical(self, serve, baseline_entries):
        st = serve()
        with ServiceClient(port=st.server.port) as client:
            job = client.submit(make_spec())["job"]
            client.wait(job)
            again = client.submit(make_spec())
            assert again["disposition"] == "cached"
            assert again["job"] == job
            assert client.results(job) == baseline_entries
            metrics = client.metrics()
        # The second submit re-executed nothing.
        committed = metrics["ipas_service_trials_committed_total"]["samples"]
        assert committed[0]["value"] == N_TRIALS
        assert metrics["ipas_service_jobs_cached_total"]["samples"][0]["value"] == 1

    def test_concurrent_duplicate_submit_attaches(self, serve):
        st = serve(solo_grace=0.3)  # build finishes well before trials start
        with ServiceClient(port=st.server.port) as a, ServiceClient(
            port=st.server.port
        ) as b:
            first = a.submit(make_spec())
            second = b.submit(make_spec())
            assert first["job"] == second["job"]
            assert second["disposition"] in ("attached", "cached")
            status = a.wait(first["job"])
            assert status["done"] == N_TRIALS
            metrics = a.metrics()
        assert (
            metrics["ipas_service_trials_committed_total"]["samples"][0]["value"]
            == N_TRIALS
        ), "duplicate submission must never re-execute trials"

    def test_watch_streams_progress_to_done(self, serve):
        st = serve()
        with ServiceClient(port=st.server.port) as client:
            job = client.submit(make_spec())["job"]
            events = list(client.watch(job))
        assert events[-1].get("op") == "done" or events[-1].get("state") == "done"
        assert sum(1 for e in events if e.get("op") == "progress") >= 1

    def test_bad_spec_is_refused(self, serve):
        st = serve()
        with ServiceClient(port=st.server.port) as client:
            with pytest.raises(ServiceError, match="trials"):
                client.submit({"source": KERNEL, "trials": 0})
            with pytest.raises(ServiceError, match="workload"):
                client.submit({"trials": 5})


class TestWorkerExecution:
    def test_worker_run_bit_identical(self, serve, baseline_entries):
        st = serve(solo=False)
        worker = start_worker(st.server.port, idle_exit=0.4)
        with ServiceClient(port=st.server.port) as client:
            job = client.submit(make_spec())["job"]
            status = client.wait(job)
            assert status["state"] == "done"
            assert client.results(job) == baseline_entries
            metrics = client.metrics()
        assert metrics["ipas_service_worker_connects_total"]["samples"][0]["value"] >= 1
        assert metrics["ipas_service_leases_granted_total"]["samples"][0]["value"] >= 3
        assert "ipas_service_solo_trials_total" not in metrics
        worker["thread"].join(30)
        assert worker["code"] == 0  # clean idle exit

    def test_dropped_ack_requeues_and_stays_identical(
        self, serve, tmp_path, baseline_entries
    ):
        chaos = ServiceChaos(
            drop_ack_at=[1], state_dir=str(tmp_path / "chaos-state")
        )
        st = serve(solo=False, chaos=chaos)
        start_worker(st.server.port, ack_timeout=1.0, idle_exit=0.4)
        with ServiceClient(port=st.server.port) as client:
            job = client.submit(make_spec())["job"]
        status = robust_wait(st.server.port, job)
        assert status["state"] == "done"
        assert robust_results(st.server.port, job) == baseline_entries
        with ServiceClient(port=st.server.port) as client:
            metrics = client.metrics()
        # The dropped chunk was requeued, and the worker's resent ack hit
        # the at-most-once gate.
        assert metrics["ipas_service_leases_requeued_total"]["samples"][0]["value"] >= 1
        assert metrics["ipas_service_acks_discarded_total"]["samples"][0]["value"] >= 1

    def test_delayed_responses_stay_identical(
        self, serve, tmp_path, baseline_entries
    ):
        state = str(tmp_path / "chaos-state")
        chaos = ServiceChaos(delay_response_at={2: 0.4, 4: 0.4}, state_dir=state)
        st = serve(solo=False, chaos=chaos)
        start_worker(st.server.port, idle_exit=0.4)
        with ServiceClient(port=st.server.port) as client:
            job = client.submit(make_spec())["job"]
        assert robust_wait(st.server.port, job)["state"] == "done"
        assert robust_results(st.server.port, job) == baseline_entries
        assert any(f.startswith("delay-") for f in os.listdir(state))

    def test_connection_reset_stays_identical(
        self, serve, tmp_path, baseline_entries
    ):
        state = str(tmp_path / "chaos-state")
        chaos = ServiceChaos(reset_at=[4], state_dir=state)
        st = serve(solo=False, chaos=chaos)
        start_worker(st.server.port, ack_timeout=2.0, idle_exit=0.4)
        with ServiceClient(port=st.server.port) as client:
            job = client.submit(make_spec())["job"]
        assert robust_wait(st.server.port, job)["state"] == "done"
        assert robust_results(st.server.port, job) == baseline_entries
        assert any(f.startswith("reset-") for f in os.listdir(state))

    def test_out_of_order_seq_kills_connection(self, serve):
        st = serve()
        from repro.service.protocol import Channel

        with Channel("127.0.0.1", st.server.port, timeout=5.0) as chan:
            chan.send({"op": "hello", "role": "worker", "seq": 1})
            assert chan.recv(5.0)["ok"]
            chan.send({"op": "lease", "seq": 7})  # gap: expected 2
            reply = chan.recv(5.0)
            assert not reply["ok"]
            assert "out-of-order" in reply["error"]
            assert chan.recv(5.0) is None  # coordinator hung up


class TestKillRestart:
    """The flagship drill: kill the coordinator mid-campaign, restart it
    on the same journal, and demand bit-identical results."""

    def _serve_argv(self, journal, port_file, extra=()):
        return [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--journal",
            journal,
            "--port-file",
            port_file,
            "--solo-grace",
            "0.05",
            "--chunk",
            "4",
            "--quiet",
            *extra,
        ]

    def _env(self):
        env = dict(os.environ)
        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return env

    def test_kill_restart_resumes_bit_identical(self, tmp_path, baseline_entries):
        journal = str(tmp_path / "journal")
        port_file = str(tmp_path / "port")
        proc = subprocess.Popen(
            self._serve_argv(journal, port_file, ["--chaos", "kill@6"]),
            env=self._env(),
        )
        try:
            port = read_port_file(port_file, timeout=30.0)
            with ServiceClient(port=port) as client:
                job = client.submit(make_spec())["job"]
            # The 6th trial commit pulls the trigger: with --chunk 4 the
            # second chunk is already durable when the process dies.
            assert proc.wait(timeout=60) == CHAOS_EXIT_CODE
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        # Same journal, same chaos spec: the fire-once marker persisted,
        # so the restart must NOT re-fire, and must resume the job.
        os.unlink(port_file)
        proc = subprocess.Popen(
            self._serve_argv(journal, port_file, ["--chaos", "kill@6"]),
            env=self._env(),
        )
        try:
            port = read_port_file(port_file, timeout=30.0)
            status = robust_wait(port, job)
            assert status["state"] == "done"
            assert status["resumed"] >= 4, "durable trials must not re-run"
            assert robust_results(port, job) == baseline_entries
            # A duplicate submit after recovery is answered from the
            # finished job, never re-executed.
            with ServiceClient(port=port) as client:
                again = client.submit(make_spec())
                assert again["disposition"] == "cached"
                assert again["job"] == job
                client.shutdown()
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()


class TestJobJournal:
    def test_roundtrip_and_done_marker(self, tmp_path):
        journal = JobJournal(str(tmp_path))
        journal.open()
        journal.record_job("abc", {"trials": 2})
        journal.record_job("xyz", {"trials": 3})
        journal.record_done("abc")
        journal.close()
        loaded = JobJournal(str(tmp_path)).load()
        assert loaded["abc"] == {"spec": {"trials": 2}, "done": True}
        assert loaded["xyz"] == {"spec": {"trials": 3}, "done": False}

    def test_torn_tail_skipped(self, tmp_path):
        journal = JobJournal(str(tmp_path))
        journal.open()
        journal.record_job("abc", {"trials": 2})
        journal.close()
        with open(journal.path, "a") as fh:
            fh.write('{"op": "job", "job": "torn", "spe')  # crash mid-write
        loaded = JobJournal(str(tmp_path)).load()
        assert set(loaded) == {"abc"}

    def test_crc_damaged_line_skipped(self, tmp_path):
        journal = JobJournal(str(tmp_path))
        journal.open()
        journal.record_job("abc", {"trials": 2})
        journal.record_job("def", {"trials": 3})
        journal.close()
        with open(journal.path) as fh:
            lines = fh.read().splitlines()
        lines[0] = lines[0].replace('"trials": 2', '"trials": 9')
        with open(journal.path, "w") as fh:
            fh.write("\n".join(lines) + "\n")
        loaded = JobJournal(str(tmp_path)).load()
        assert set(loaded) == {"def"}

    def test_missing_file_is_empty(self, tmp_path):
        assert JobJournal(str(tmp_path / "fresh")).load() == {}


class TestSpecs:
    def test_canonical_spec_fills_defaults_and_sorts(self):
        a = canonical_spec({"source": KERNEL, "trials": 5})
        b = canonical_spec({"trials": 5, "source": KERNEL, "seed": 0})
        assert a == b
        assert json.loads(a)["protect"] == "none"

    def test_validate_rejects_bad_specs(self):
        with pytest.raises(ValueError, match="workload"):
            validate_spec({"trials": 5})
        with pytest.raises(ValueError, match="trials"):
            validate_spec({"source": KERNEL, "trials": -1})
        with pytest.raises(ValueError, match="protect"):
            validate_spec({"source": KERNEL, "trials": 5, "protect": "most"})
        with pytest.raises(ValueError):
            validate_spec({"source": KERNEL, "workload": "fft", "trials": 5})

    def test_build_campaign_source_form(self):
        campaign = build_campaign({"source": KERNEL, "trials": 4})
        campaign.prepare()
        assert campaign.sample_trials(4, 0)


class TestServiceChaosSpec:
    def test_parse_full_grammar(self, tmp_path):
        chaos = parse_service_chaos_spec(
            "kill@3,drop-ack@2,delay@4:0.25,reset@5",
            state_dir=str(tmp_path),
        )
        assert chaos.kill_at_commit == 3
        assert chaos.drop_ack_at == frozenset({2})
        assert chaos.delay_response_at == {4: 0.25}
        assert chaos.reset_at == frozenset({5})

    def test_validate_rejects_garbage(self):
        with pytest.raises(ValueError, match="kaboom@3"):
            validate_service_chaos_spec("kill@1,kaboom@3")
        with pytest.raises(ValueError, match="delay@x"):
            validate_service_chaos_spec("delay@x:1")
        validate_service_chaos_spec("kill@1")  # no raise

    def test_fire_once_survives_restart(self, tmp_path):
        state = str(tmp_path / "state")
        first = ServiceChaos(drop_ack_at=[1], state_dir=state)
        assert first.on_ack() is True
        # A fresh incarnation pointed at the same state dir sees the
        # marker and does not re-fire the same ordinal.
        second = ServiceChaos(drop_ack_at=[1], state_dir=state)
        assert second.on_ack() is False


class TestClientHelpers:
    def test_parse_connect(self):
        assert parse_connect("1234") == ("127.0.0.1", 1234)
        assert parse_connect("10.0.0.5:81") == ("10.0.0.5", 81)
        with pytest.raises(ValueError, match="HOST:PORT"):
            parse_connect("nope")

    def test_read_port_file_times_out(self, tmp_path):
        with pytest.raises(TimeoutError):
            read_port_file(str(tmp_path / "absent"), timeout=0.2)

    def test_read_port_file_polls_until_written(self, tmp_path):
        path = str(tmp_path / "port")

        def write_late():
            time.sleep(0.2)
            with open(path, "w") as fh:
                fh.write("4321\n")

        threading.Thread(target=write_late, daemon=True).start()
        assert read_port_file(path, timeout=10.0) == 4321
