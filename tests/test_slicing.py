"""Unit tests for Weiser forward/backward slicing (paper §4.2)."""

import pytest

from repro import compile_source
from repro.analysis import (
    SliceContext,
    SliceStatistics,
    backward_slice,
    forward_slice,
    underlying_object,
)
from repro.ir import (
    ArrayType,
    F64,
    I64,
    IRBuilder,
    Module,
    const_float,
    const_int,
    verify_module,
)


def straightline_module():
    """a = x+1; b = a*2; c = b-3; store c; unrelated d."""
    m = Module("t")
    g = m.add_global("out", I64)
    fn = m.add_function("f", I64, [I64], ["x"])
    b = IRBuilder(fn.add_block("entry"))
    a = b.add(fn.args[0], const_int(1), "a")
    bb = b.mul(a, const_int(2), "b")
    c = b.sub(bb, const_int(3), "c")
    b.store(c, g)
    d = b.add(fn.args[0], const_int(100), "d")
    b.ret(d)
    verify_module(m)
    return m, fn, (a, bb, c, d)


class TestRegisterDataflow:
    def test_forward_slice_follows_uses(self):
        m, fn, (a, bb, c, d) = straightline_module()
        sliced = forward_slice(a)
        opcodes = sorted(i.opcode for i in sliced)
        assert bb in sliced and c in sliced
        assert d not in sliced
        assert "store" in opcodes  # the store consuming c is influenced

    def test_forward_slice_excludes_self(self):
        m, fn, (a, *_rest) = straightline_module()
        assert a not in forward_slice(a)

    def test_unused_value_has_terminal_slice(self):
        m, fn, (a, bb, c, d) = straightline_module()
        sliced = forward_slice(d)
        assert all(i.opcode == "ret" for i in sliced)

    def test_backward_slice_follows_operands(self):
        m, fn, (a, bb, c, d) = straightline_module()
        sliced = backward_slice(c)
        assert a in sliced and bb in sliced
        assert d not in sliced

    def test_max_size_caps_closure(self):
        m, fn, (a, *_rest) = straightline_module()
        sliced = forward_slice(a, max_size=1)
        assert len(sliced) <= 2  # cap is approximate (checked per pop)


class TestMemoryDataflow:
    def build(self):
        """store (x*2) into buf[1]; later load buf[1] and double it."""
        m = Module("t")
        buf = m.add_global("buf", ArrayType(I64, 4))
        fn = m.add_function("f", I64, [I64], ["x"])
        b = IRBuilder(fn.add_block("entry"))
        v = b.mul(fn.args[0], const_int(2), "v")
        p = b.gep(buf, const_int(1))
        b.store(v, p)
        p2 = b.gep(buf, const_int(1))
        loaded = b.load(p2, "loaded")
        result = b.add(loaded, loaded, "result")
        b.ret(result)
        verify_module(m)
        return m, fn, v, loaded, result

    def test_taint_flows_through_memory(self):
        m, fn, v, loaded, result = self.build()
        context = SliceContext(m)
        sliced = forward_slice(v, context=context)
        assert loaded in sliced
        assert result in sliced

    def test_underlying_object_chases_geps(self):
        m, fn, v, loaded, result = self.build()
        gep = loaded.pointer
        assert underlying_object(gep) is m.get_global("buf")

    def test_backward_slice_reaches_store(self):
        m, fn, v, loaded, result = self.build()
        sliced = backward_slice(result)
        assert v in sliced  # through the store-load pair


class TestInterprocedural:
    SOURCE = """
    double scale = 2.0;
    output double result[1];
    double helper(double v) {
        return v * 3.0;
    }
    void main() {
        double x = scale;   // loaded, so nothing below constant-folds
        double y = helper(x + 1.0);
        result[0] = y;
    }
    """

    def test_taint_crosses_call(self):
        module = compile_source(self.SOURCE)
        main = module.get_function("main")
        helper = module.get_function("helper")
        context = SliceContext(module)
        add = next(i for i in main.instructions() if i.opcode == "fadd")
        sliced = forward_slice(add, context=context)
        # The multiply inside helper consumes the tainted argument.
        helper_mul = next(i for i in helper.instructions() if i.opcode == "fmul")
        assert helper_mul in sliced

    def test_taint_returns_to_call_site(self):
        module = compile_source(self.SOURCE)
        helper = module.get_function("helper")
        main = module.get_function("main")
        context = SliceContext(module)
        mul = next(i for i in helper.instructions() if i.opcode == "fmul")
        sliced = forward_slice(mul, context=context)
        call = next(i for i in main.instructions() if i.opcode == "call")
        assert call in sliced
        store = next(i for i in main.instructions() if i.opcode == "store")
        assert store in sliced


class TestSliceStatistics:
    def test_statistics_counts(self):
        module = compile_source(
            """
            output double result[1];
            void main() {
                double acc = 0.0;
                double buf[4];
                for (int i = 0; i < 4; i = i + 1) {
                    buf[i] = (double)i;
                    acc = acc + buf[i] * 2.0;
                }
                result[0] = sqrt(acc);
            }
            """
        )
        main = module.get_function("main")
        context = SliceContext(module)
        sitofp = next(i for i in main.instructions() if i.opcode == "sitofp")
        stats = SliceStatistics(forward_slice(sitofp, context=context))
        assert stats.size > 0
        assert stats.stores >= 1
        assert stats.loads >= 1
        assert stats.binary_ops >= 1
        assert stats.calls >= 1  # sqrt is downstream of buf values

    def test_empty_slice_statistics(self):
        stats = SliceStatistics(set())
        assert stats.size == 0
        assert stats.loads == stats.stores == stats.calls == 0

    def test_dangling_instruction_rejected(self):
        from repro.ir import BinaryOperator

        dangling = BinaryOperator("add", const_int(1), const_int(2))
        with pytest.raises(ValueError):
            forward_slice(dangling)
        with pytest.raises(ValueError):
            backward_slice(dangling)
