"""Property suite for warm-start (snapshot-ladder) campaign execution.

The tentpole contract: a warm-start campaign — every trial restored from
the golden-run ladder rung just before its injection point and executed
only for its suffix — produces outcome records *bit-identical* to the
historical cold-start campaign, for every registered workload, any
snapshot stride, and any worker count.  That includes the recovery
runtime's rollback telemetry and the harness paths (chaos kills,
quarantine, checkpoint resume).
"""

import pytest

from repro import compile_source
from repro.faults import (
    Campaign,
    CampaignStats,
    CheckpointWarning,
    Outcome,
    TrialRecord,
    campaign_fingerprint,
    fork_available,
)
from repro.faults.chaos import ChaosMonkey, parse_chaos_spec
from repro.faults.outcomes import OutcomeCounts
from repro.interp import Interpreter
from repro.recover import RecoveryPolicy, SnapshotLadder, WarmSnapshot, WarmStart
from repro.workloads import WORKLOAD_NAMES, get_workload

KERNEL = """
int n = 14;
output double result[4];

double work(double a[], int n) {
    double s = 0.0;
    for (int i = 0; i < n; i = i + 1) {
        s = s + a[i] * a[i];
    }
    return sqrt(s);
}

void main() {
    double x[16];
    for (int i = 0; i < n; i = i + 1) { x[i] = (double)(i + 1); }
    result[0] = work(x, n);
    result[1] = (double)n;
}
"""

N_TRIALS = 24
SEED = 11

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="supervised pool needs the fork start method"
)


def make_campaign(**kwargs):
    return Campaign(Interpreter(compile_source(KERNEL, name="kernel")), **kwargs)


def make_workload_campaign(name, **kwargs):
    workload = get_workload(name)
    return Campaign(
        workload.make_interpreter(1),
        verifier=workload.verifier(),
        entry=workload.entry,
        budget_factor=workload.budget_factor,
        **kwargs,
    )


def record_key(record):
    """Everything observable about a trial, including recovery telemetry."""
    return (
        record.site.instruction.opcode,
        record.site.occurrence,
        record.site.bit,
        record.outcome,
        record.status,
        record.cycles,
        record.recovery.as_wire() if record.recovery is not None else None,
    )


def keys(result):
    return [record_key(r) for r in result.records]


class TestLadderStructure:
    def test_rungs_cover_the_run(self):
        campaign = make_campaign(warm_start=True, snapshot_stride=5)
        ladder = campaign.ensure_ladder()
        assert isinstance(ladder, SnapshotLadder)
        assert ladder.stride == 5
        assert ladder.golden_cycles == campaign.golden_cycles
        assert ladder.snapshots, "a multi-hundred-cycle run must capture rungs"
        cycles = [s.cycles for s in ladder.snapshots]
        assert cycles == sorted(cycles)
        assert len(set(cycles)) == len(cycles)
        for i, snap in enumerate(ladder.snapshots):
            assert isinstance(snap, WarmSnapshot)
            assert snap.index == i
            assert snap.frames  # at least the entry frame is live
            assert len(snap.cells) == len(campaign.interp.cells)

    def test_ladder_is_captured_once(self):
        campaign = make_campaign(warm_start=True)
        assert campaign.ensure_ladder() is campaign.ensure_ladder()

    def test_auto_stride_targets_default_rung_count(self):
        campaign = make_campaign(warm_start=True)
        expected = max(campaign.golden_cycles // Campaign.DEFAULT_LADDER_RUNGS, 1)
        assert campaign.effective_stride == expected

    def test_signature_names_the_stride(self):
        campaign = make_campaign(warm_start=True, snapshot_stride=7)
        assert campaign.ensure_ladder().signature() == "warm1|7"

    def test_stride_must_be_positive(self):
        interp = Interpreter(compile_source(KERNEL, name="kernel"))
        with pytest.raises(ValueError):
            interp.capture_ladder(stride=0)


class TestBitIdentity:
    @pytest.fixture(scope="class")
    def cold_baseline(self):
        return keys(make_campaign().run(N_TRIALS, seed=SEED))

    def test_warm_equals_cold(self, cold_baseline):
        result = make_campaign(warm_start=True).run(N_TRIALS, seed=SEED)
        assert keys(result) == cold_baseline
        assert result.stats.warm_restores > 0

    def test_warm_equals_cold_at_tiny_stride(self, cold_baseline):
        result = make_campaign(warm_start=True, snapshot_stride=1).run(
            N_TRIALS, seed=SEED
        )
        assert keys(result) == cold_baseline

    def test_warm_equals_cold_at_huge_stride(self, cold_baseline):
        # A stride past golden_cycles leaves at most the earliest rungs;
        # trials mostly run cold and must still match exactly.
        result = make_campaign(warm_start=True, snapshot_stride=10**9).run(
            N_TRIALS, seed=SEED
        )
        assert keys(result) == cold_baseline

    @needs_fork
    def test_warm_parallel_equals_cold_serial(self, cold_baseline):
        result = make_campaign(warm_start=True).run(N_TRIALS, seed=SEED, n_jobs=2)
        assert keys(result) == cold_baseline
        assert result.stats.warm_restores > 0

    def test_warm_stats_are_reported(self):
        result = make_campaign(warm_start=True).run(N_TRIALS, seed=SEED)
        stats = result.stats
        assert stats.warm_restores > 0
        assert stats.warm_cycles_saved > 0
        warm = stats.as_dict()["warm_start"]
        assert warm["restores"] == stats.warm_restores
        assert warm["golden_resyncs"] == stats.golden_resyncs
        assert warm["prefix_cycles_saved"] == stats.warm_cycles_saved
        assert "[warm" in stats.progress_line()


@pytest.mark.parametrize("name", sorted(WORKLOAD_NAMES))
class TestAllWorkloads:
    """Warm==cold on every registered workload, injected faults included."""

    def test_warm_equals_cold(self, name):
        trials, seed = 20, 0
        cold = make_workload_campaign(name).run(trials, seed=seed)
        warm = make_workload_campaign(name, warm_start=True).run(trials, seed=seed)
        assert keys(warm) == keys(cold)
        assert warm.counts.as_dict() == cold.counts.as_dict()
        assert warm.stats.warm_restores > 0


class TestRecoveryPath:
    """Warm-start under the rollback runtime: CORRECTED trials and their
    telemetry must replay bit-identically (resync is disabled there)."""

    @staticmethod
    def _campaign(warm_start=False):
        from repro.protect import FullDuplicationSelector, duplicate_instructions

        workload = get_workload("fft")
        module = workload.compile()
        duplicate_instructions(module, FullDuplicationSelector().select(module))
        return Campaign(
            workload.make_interpreter(1, module=module),
            verifier=workload.verifier(),
            entry=workload.entry,
            budget_factor=workload.budget_factor,
            recovery=RecoveryPolicy(),
            warm_start=warm_start,
        )

    def test_warm_equals_cold_with_recovery(self):
        trials, seed = 40, 7
        cold = self._campaign().run(trials, seed=seed)
        warm = self._campaign(warm_start=True).run(trials, seed=seed)
        assert keys(warm) == keys(cold)
        assert cold.counts.counts[Outcome.CORRECTED] >= 1, (
            "seed must exercise the rollback path for this test to mean anything"
        )
        assert warm.stats.golden_resyncs == 0  # resync is off under recovery
        assert warm.stats.warm_restores > 0


@needs_fork
class TestHarnessPaths:
    def test_poisoned_trial_quarantined_warm(self, tmp_path):
        chaos = ChaosMonkey(kill_at=[9], once=False, state_dir=str(tmp_path / "c"))
        result = make_campaign(warm_start=True).run(
            N_TRIALS, seed=SEED, n_jobs=2, max_retries=1, chaos=chaos
        )
        assert result.records[9].outcome is Outcome.TRIAL_FAILURE
        assert result.counts.counts[Outcome.TRIAL_FAILURE] == 1
        cold = make_campaign().run(N_TRIALS, seed=SEED)
        surviving = [k for i, k in enumerate(keys(result)) if i != 9]
        assert surviving == [k for i, k in enumerate(keys(cold)) if i != 9]

    def test_killed_worker_bit_identical_warm(self, tmp_path):
        chaos = parse_chaos_spec("kill@5", state_dir=str(tmp_path / "c"))
        result = make_campaign(warm_start=True).run(
            N_TRIALS, seed=SEED, n_jobs=2, chaos=chaos
        )
        assert keys(result) == keys(make_campaign().run(N_TRIALS, seed=SEED))
        assert result.stats.worker_deaths >= 1


class TestCheckpointIsolation:
    """Warm and cold checkpoints must never mix: the fingerprint differs."""

    def test_fingerprint_differs_and_encodes_stride(self):
        cold = campaign_fingerprint(make_campaign(), N_TRIALS, SEED)
        warm = campaign_fingerprint(make_campaign(warm_start=True), N_TRIALS, SEED)
        warm5 = campaign_fingerprint(
            make_campaign(warm_start=True, snapshot_stride=5), N_TRIALS, SEED
        )
        assert cold != warm
        assert warm != warm5

    def test_warm_resumes_its_own_checkpoint(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        first = make_campaign(warm_start=True).run(
            N_TRIALS, seed=SEED, checkpoint_path=path
        )
        resumed = make_campaign(warm_start=True).run(
            N_TRIALS, seed=SEED, checkpoint_path=path
        )
        assert resumed.stats.resumed == N_TRIALS
        assert keys(resumed) == keys(first)

    def test_cold_checkpoint_discarded_by_warm_campaign(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        make_campaign().run(N_TRIALS, seed=SEED, checkpoint_path=path)
        with pytest.warns(CheckpointWarning, match="fingerprint"):
            resumed = make_campaign(warm_start=True).run(
                N_TRIALS, seed=SEED, checkpoint_path=path
            )
        assert resumed.stats.resumed == 0
        assert keys(resumed) == keys(make_campaign().run(N_TRIALS, seed=SEED))


class TestResetImage:
    """The precomputed reset image (satellite perf fix) must track overrides."""

    def test_override_lands_in_reset_image(self):
        interp = Interpreter(compile_source(KERNEL, name="kernel"))
        base = interp.run().cycles
        interp.set_global_override("n", 6)
        shorter = interp.run()
        assert shorter.status == "ok"
        assert shorter.cycles < base
        assert interp.read_global("n") == 6
        # Override persists across resets via the cached image.
        assert interp.run().cycles == shorter.cycles

    def test_clearing_overrides_invalidates_the_image(self):
        interp = Interpreter(compile_source(KERNEL, name="kernel"))
        base = interp.run().cycles
        interp.set_global_override("n", 6)
        interp.run()
        interp.clear_global_overrides()
        assert interp.run().cycles == base


class TestSlots:
    def test_per_trial_hot_objects_are_slotted(self):
        for cls in (CampaignStats, OutcomeCounts, TrialRecord, WarmSnapshot, WarmStart):
            assert "__dict__" not in cls.__dict__, f"{cls.__name__} grew a __dict__"
        stats = CampaignStats(1, 1)
        counts = OutcomeCounts()
        with pytest.raises(AttributeError):
            stats.not_a_field = 1
        with pytest.raises(AttributeError):
            counts.not_a_field = 1
