"""Tests for the diagnostics engine: Diagnostic/DiagnosticReport structure,
the lint rules, golden diagnostics on built-in workloads, the
duplication-introduces-no-findings property, and pass-manager debug mode."""

import json

import pytest

from repro.diag import (
    DEFAULT_RISK_THRESHOLD,
    Diagnostic,
    DiagnosticReport,
    Severity,
    registered_rules,
    render_json,
    render_text,
    run_lints,
)
from repro.ir import (
    ArrayType,
    I1,
    I64,
    IRBuilder,
    Module,
    const_int,
    verify_module,
)
from repro.passes import standard_pipeline
from repro.protect import FullDuplicationSelector, duplicate_instructions
from repro.workloads import all_workloads, get_workload


class TestSeverity:
    def test_ordering(self):
        assert Severity.NOTE < Severity.WARNING < Severity.ERROR

    def test_labels_and_parse_round_trip(self):
        for severity in Severity:
            assert Severity.parse(severity.label) is severity

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError):
            Severity.parse("fatal")


class TestDiagnosticReport:
    def make_report(self):
        report = DiagnosticReport()
        report.add(Diagnostic("DV01", Severity.NOTE, "dead", "f", "entry", 0, "v"))
        report.add(Diagnostic("DS01", Severity.WARNING, "dead store", "f", "entry", 1))
        report.add(Diagnostic("DUP01", Severity.ERROR, "leak", "g", "body", 2, "x.dup"))
        return report

    def test_sorted_most_severe_first(self):
        ordered = self.make_report().sorted()
        severities = [d.severity for d in ordered]
        assert severities == sorted(severities, reverse=True)

    def test_filter_and_flags(self):
        report = self.make_report()
        assert len(report.filter(Severity.WARNING)) == 2
        assert report.has_errors and report.has_findings
        notes_only = DiagnosticReport(report.by_code("DV01"))
        assert not notes_only.has_findings

    def test_counts_and_summary(self):
        report = self.make_report()
        assert report.counts_by_severity() == {"note": 1, "warning": 1, "error": 1}
        assert report.summary() == "1 error, 1 warning, 1 note"

    def test_delta_introduced_and_fixed(self):
        before = self.make_report()
        after = DiagnosticReport(list(before)[:2])  # error fixed
        after.add(Diagnostic("CF01", Severity.WARNING, "unreachable", "h", "dead"))
        introduced, fixed = after.delta(before)
        assert [d.code for d in introduced] == ["CF01"]
        assert [d.code for d in fixed] == ["DUP01"]

    def test_to_json_parses(self):
        payload = json.loads(self.make_report().to_json())
        assert len(payload) == 3
        assert {d["severity"] for d in payload} == {"note", "warning", "error"}

    def test_format_pins_location(self):
        diag = Diagnostic("DS01", Severity.WARNING, "msg", "f", "entry", 3, "v")
        text = diag.format()
        assert "warning[DS01]" in text and "f/entry[3]" in text and "%v" in text


class TestLintRules:
    def test_rule_registry_covers_documented_codes(self):
        codes = {code for code, _ in registered_rules()}
        assert {"DS01", "CF01", "DV01", "RISK01", "DUP01", "DUP02"} <= codes

    def test_dead_store_flagged(self):
        m = Module("t")
        scratch = m.add_global("scratch", ArrayType(I64, 2))
        fn = m.add_function("main", I64, [], [])
        b = IRBuilder(fn.add_block("entry"))
        cell = b.gep(scratch, const_int(0))
        b.store(const_int(7), cell)
        b.ret(const_int(0))
        verify_module(m)
        report = run_lints(m, codes=["DS01"])
        assert len(report.by_code("DS01")) == 1
        assert report.has_findings

    def test_output_store_not_a_dead_store(self):
        m = Module("t")
        out = m.add_global("out", ArrayType(I64, 2), is_output=True)
        fn = m.add_function("main", I64, [], [])
        b = IRBuilder(fn.add_block("entry"))
        b.store(const_int(7), b.gep(out, const_int(0)))
        b.ret(const_int(0))
        assert not run_lints(m, codes=["DS01"]).by_code("DS01")

    def test_unreachable_block_flagged(self):
        m = Module("t")
        fn = m.add_function("main", I64, [], [])
        entry = fn.add_block("entry")
        orphan = fn.add_block("orphan")
        IRBuilder(entry).ret(const_int(0))
        IRBuilder(orphan).ret(const_int(1))
        report = run_lints(m, codes=["CF01"])
        found = report.by_code("CF01")
        assert len(found) == 1 and found[0].block == "orphan"

    def test_dead_value_is_a_note(self):
        m = Module("t")
        fn = m.add_function("main", I64, [I64], ["x"])
        b = IRBuilder(fn.add_block("entry"))
        b.add(fn.args[0], const_int(1))  # never used
        b.ret(const_int(0))
        report = run_lints(m, codes=["DV01"])
        found = report.by_code("DV01")
        assert len(found) == 1 and found[0].severity == Severity.NOTE
        assert not report.has_findings  # notes are advisory

    def test_duplication_leak_is_an_error(self):
        m = Module("t")
        out = m.add_global("out", ArrayType(I64, 2), is_output=True)
        fn = m.add_function("main", I64, [I64], ["x"])
        b = IRBuilder(fn.add_block("entry"))
        v = b.add(fn.args[0], const_int(1), name="v")
        b.store(v, b.gep(out, const_int(0)))
        b.ret(const_int(0))
        duplicate_instructions(m, FullDuplicationSelector().select(m))
        verify_module(m)
        assert not run_lints(m).filter(Severity.ERROR).diagnostics
        # Sabotage: reroute the original store to consume the duplicate.
        dup = next(i for i in fn.instructions() if i.name.endswith(".dup"))
        store = next(
            i for i in fn.instructions() if i.opcode == "store" and i.operands[0] is not dup
        )
        store.set_operand(0, dup)
        report = run_lints(m, codes=["DUP01"])
        assert report.has_errors
        assert "leaks" in report.by_code("DUP01")[0].message

    def test_unchecked_duplicate_is_an_error(self):
        m = Module("t")
        out = m.add_global("out", ArrayType(I64, 2), is_output=True)
        fn = m.add_function("main", I64, [I64], ["x"])
        b = IRBuilder(fn.add_block("entry"))
        v = b.add(fn.args[0], const_int(1), name="v")
        b.store(v, b.gep(out, const_int(0)))
        b.ret(const_int(0))
        duplicate_instructions(m, FullDuplicationSelector().select(m))
        # Sabotage: drop every check call; duplicates now dead-end.
        from repro.ir import is_check_intrinsic
        from repro.ir.instructions import CallInst

        for block in fn.blocks:
            for inst in list(block.instructions):
                if isinstance(inst, CallInst) and is_check_intrinsic(inst.callee):
                    block.remove(inst)
                    inst.drop_operands()
        report = run_lints(m, codes=["DUP01"])
        assert report.has_errors
        assert "not compared" in report.by_code("DUP01")[0].message

    def test_self_compare_check_flagged(self):
        m = Module("t")
        out = m.add_global("out", ArrayType(I64, 2), is_output=True)
        fn = m.add_function("main", I64, [I64], ["x"])
        b = IRBuilder(fn.add_block("entry"))
        v = b.add(fn.args[0], const_int(1), name="v")
        b.store(v, b.gep(out, const_int(0)))
        b.ret(const_int(0))
        duplicate_instructions(m, FullDuplicationSelector().select(m))
        from repro.ir import is_check_intrinsic
        from repro.ir.instructions import CallInst

        check = next(
            i for i in fn.instructions()
            if isinstance(i, CallInst) and is_check_intrinsic(i.callee)
        )
        check.set_operand(1, check.operands[0])
        report = run_lints(m, codes=["DUP02"])
        assert report.has_errors
        assert "itself" in report.by_code("DUP02")[0].message

    def test_risk01_only_on_protected_modules(self):
        module = get_workload("is").compile()
        # Unprotected: advisory rule stays quiet regardless of risk.
        assert not run_lints(module, codes=["RISK01"]).diagnostics
        # Protect a single instruction: high-risk leftovers get noted.
        from repro.analysis import static_risk_report

        ranked = static_risk_report(module).ranked()
        assert ranked[0].risk >= DEFAULT_RISK_THRESHOLD
        duplicate_instructions(module, [ranked[-1].instruction])
        report = run_lints(module, codes=["RISK01"])
        found = report.by_code("RISK01")
        assert found and all(d.severity == Severity.NOTE for d in found)
        assert not report.has_findings


class TestGoldenWorkloadDiagnostics:
    """The bundled workloads are the golden corpus: after the standard
    pipeline they must lint clean (no warnings, no errors, no notes)."""

    @pytest.mark.parametrize("name", ["hpccg", "is"])
    def test_optimized_workload_lints_clean(self, name):
        module = get_workload(name).compile()
        report = run_lints(module)
        assert report.summary() == "0 errors, 0 warnings, 0 notes"

    @pytest.mark.parametrize("name", ["hpccg", "is"])
    def test_fully_protected_workload_lints_clean(self, name):
        module = get_workload(name).compile()
        duplicate_instructions(module, FullDuplicationSelector().select(module))
        verify_module(module)
        report = run_lints(module)
        assert report.summary() == "0 errors, 0 warnings, 0 notes"

    def test_render_text_shape(self):
        from repro.analysis import static_risk_report

        module = get_workload("is").compile()
        text = render_text(run_lints(module), static_risk_report(module), risk_limit=5)
        assert "diagnostics: 0 errors, 0 warnings, 0 notes" in text
        assert "static risk:" in text and "top 5:" in text

    def test_render_json_shape(self):
        from repro.analysis import static_risk_report
        from repro.analysis.risk import DUPLICABLE_TYPES

        module = get_workload("hpccg").compile()
        payload = json.loads(
            render_json(run_lints(module), static_risk_report(module), module.name)
        )
        assert payload["exit_ok"] is True
        assert payload["diagnostics"] == []
        duplicable = sum(
            isinstance(i, DUPLICABLE_TYPES) for i in module.instructions()
        )
        assert len(payload["risk"]) == duplicable
        assert all(0.0 <= entry["risk"] <= 1.0 for entry in payload["risk"])


class TestDuplicationIntroducesNoFindings:
    """Property: on every registered workload, the duplication pass adds
    zero new warning-or-worse findings (the pass is diagnostically inert)."""

    @pytest.mark.parametrize(
        "workload", all_workloads(), ids=lambda w: w.name
    )
    def test_full_duplication_is_lint_neutral(self, workload):
        module = workload.compile()
        before = run_lints(module)
        duplicate_instructions(module, FullDuplicationSelector().select(module))
        verify_module(module)
        after = run_lints(module)
        introduced, _ = after.delta(before)
        findings = [d for d in introduced if d.severity >= Severity.WARNING]
        assert findings == []


class TestPassManagerDebugMode:
    def test_debug_records_one_per_pass(self):
        from repro import compile_source

        module = compile_source(
            "output double r[1];\n"
            "void main() { double t = 1.5 * 2.0; r[0] = t; }\n",
            optimize=False,
        )
        pipeline = standard_pipeline(debug=True)
        pipeline.run(module)
        assert len(pipeline.debug_records) == 4
        names = [record.pass_name for record in pipeline.debug_records]
        assert names == ["mem2reg", "constant-fold", "simplify-cfg", "dce"]

    @pytest.mark.parametrize(
        "workload", all_workloads(), ids=lambda w: w.name
    )
    def test_zero_findings_on_builtin_workloads(self, workload):
        module = workload.compile(optimize=False)
        pipeline = standard_pipeline(debug=True)
        pipeline.run_to_fixpoint(module)
        assert pipeline.debug_records
        final = pipeline.debug_records[-1]
        assert final.findings == 0, final.report.summary()
        for record in pipeline.debug_records:
            assert record.findings == 0, (
                f"{record.pass_name} left findings: {record.report.summary()}"
            )

    def test_debug_record_format_marks_changing_passes(self):
        from repro import compile_source

        module = compile_source(
            "output double r[1];\n"
            "void main() { r[0] = 2.0 + 3.0; }\n",
            optimize=False,
        )
        pipeline = standard_pipeline(debug=True)
        pipeline.run(module)
        changed = [r for r in pipeline.debug_records if r.changed]
        assert changed and changed[0].format().startswith("*")


class TestCoverageRules:
    """COV01/COV02/COV03: the coverage-prover-backed lint rules."""

    SRC = (
        "int n = 16;\n"
        "output int result[2];\n"
        "double helper(double x) { return x * 2.0; }\n"
        "void main() {\n"
        "    int acc = 0;\n"
        "    int mix = 1;\n"
        "    for (int i = 0; i < n; i = i + 1) {\n"
        "        acc = acc + i * 3;\n"
        "        mix = (mix + acc) ^ i;\n"
        "    }\n"
        "    result[0] = acc;\n"
        "    result[1] = mix;\n"
        "}\n"
    )

    def naive_protected(self):
        from repro import compile_source
        from repro.protect.duplication import DuplicationPass

        module = compile_source(self.SRC, name="naive")
        dup = DuplicationPass(module, check_placement="every")
        dup.run(FullDuplicationSelector().select(module))
        verify_module(module)
        return module

    def test_cov_rules_are_registered(self):
        codes = {code for code, _ in registered_rules()}
        assert {"COV01", "COV02", "COV03"} <= codes

    def test_cov01_flags_subsumed_checks(self):
        report = run_lints(self.naive_protected(), codes=["COV01"])
        findings = [d for d in report if d.code == "COV01"]
        assert findings
        assert all(d.severity is Severity.WARNING for d in findings)
        assert "subsumed" in findings[0].message

    def test_cov01_matches_check_elimination(self):
        from repro.passes import eliminate_redundant_checks

        module = self.naive_protected()
        flagged = len(run_lints(module, codes=["COV01"]))
        removed = eliminate_redundant_checks(module).checks_removed
        assert flagged == removed
        # After elimination the rule is satisfied.
        assert not run_lints(module, codes=["COV01"])

    def test_cov02_flags_uncallable_checks(self):
        report = run_lints(self.naive_protected(), codes=["COV02"])
        findings = [d for d in report if d.code == "COV02"]
        assert findings
        assert any(d.function == "helper" for d in findings)

    def test_cov03_flags_escaping_high_risk_sites(self):
        report = run_lints(
            self.naive_protected(), codes=["COV03"], risk_threshold=0.1
        )
        findings = [d for d in report if d.code == "COV03"]
        assert findings
        assert "ESCAPES" in findings[0].message

    def test_cov_rules_silent_on_unprotected_modules(self):
        from repro import compile_source

        module = compile_source(self.SRC, name="clean")
        report = run_lints(
            module, codes=["COV01", "COV02", "COV03"], risk_threshold=0.1
        )
        assert not list(report)

    def test_tail_placement_lints_clean(self):
        # The paper's default placement: no COV01 redundancy to flag on
        # a protected workload module.
        module = get_workload("is").compile()
        duplicate_instructions(
            module, FullDuplicationSelector().select(module)
        )
        report = run_lints(module, codes=["COV01"])
        assert not list(report)
