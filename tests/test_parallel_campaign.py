"""Tests for the parallel campaign engine (determinism, checkpointing, stats).

The engine's contract is that a campaign is a pure function of (module,
input, seed): pre-sampling the trial plan serially makes outcomes
bit-identical for every worker count, checkpoint resume included.
"""

import json

import pytest

from repro import compile_source
from repro.experiments import cache
from repro.faults import (
    Campaign,
    CampaignCheckpoint,
    CampaignStats,
    Outcome,
    TrialRecord,
    campaign_fingerprint,
    fork_available,
    injectable_instructions,
    resolve_jobs,
)
from repro.faults.parallel import fork_map
from repro.interp import Interpreter

KERNEL = """
int n = 12;
output double result[4];

double work(double a[], int n) {
    double s = 0.0;
    for (int i = 0; i < n; i = i + 1) {
        s = s + a[i] * a[i];
    }
    return sqrt(s);
}

void main() {
    double x[16];
    for (int i = 0; i < n; i = i + 1) { x[i] = (double)(i + 1); }
    result[0] = work(x, n);
    result[1] = (double)n;
}
"""


def make_campaign():
    return Campaign(Interpreter(compile_source(KERNEL, name="kernel")))


def site_key(site):
    return (id(site.instruction), site.occurrence, site.bit)


def record_key(record):
    site = record.site
    return (
        site.instruction.opcode,
        site.occurrence,
        site.bit,
        record.outcome,
        record.status,
        record.cycles,
    )


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("IPAS_JOBS", raising=False)
        assert resolve_jobs(None) == 1

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv("IPAS_JOBS", "3")
        assert resolve_jobs(None) == 3
        assert resolve_jobs(2) == 2  # explicit beats env

    def test_zero_means_all_cpus(self, monkeypatch):
        monkeypatch.delenv("IPAS_JOBS", raising=False)
        assert resolve_jobs(0) >= 1

    def test_bad_env_raises(self, monkeypatch):
        monkeypatch.setenv("IPAS_JOBS", "many")
        with pytest.raises(ValueError):
            resolve_jobs(None)


class TestDeterminism:
    def test_sample_trials_matches_executed_plan(self):
        campaign = make_campaign()
        planned = campaign.sample_trials(20, seed=5)
        result = campaign.run(20, seed=5)
        assert [site_key(r.site) for r in result.records] == [
            site_key(s) for s in planned
        ]

    def test_parallel_matches_serial(self):
        serial = make_campaign().run(24, seed=7)
        parallel = make_campaign().run(24, seed=7, n_jobs=4)
        assert serial.counts.as_dict() == parallel.counts.as_dict()
        assert [record_key(r) for r in serial.records] == [
            record_key(r) for r in parallel.records
        ]
        assert parallel.stats.n_jobs == 4
        assert parallel.stats.completed == 24

    def test_seed_changes_plan(self):
        campaign = make_campaign()
        plan_a = [site_key(s) for s in campaign.sample_trials(16, seed=0)]
        plan_b = [site_key(s) for s in campaign.sample_trials(16, seed=1)]
        assert plan_a != plan_b
        assert plan_a == [site_key(s) for s in campaign.sample_trials(16, seed=0)]


class TestCheckpoint:
    def test_resume_matches_uninterrupted(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        reference = make_campaign().run(20, seed=3)

        class Abort(Exception):
            pass

        def bomb(index, record, remaining=[8]):
            remaining[0] -= 1
            if remaining[0] == 0:
                raise Abort

        with pytest.raises(Abort):
            make_campaign().run(20, seed=3, checkpoint_path=path, on_trial=bomb)

        resumed = make_campaign().run(20, seed=3, checkpoint_path=path, n_jobs=2)
        assert resumed.stats.resumed == 8
        assert resumed.stats.completed == 12
        assert [record_key(r) for r in resumed.records] == [
            record_key(r) for r in reference.records
        ]

    def test_mismatched_fingerprint_discarded(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        header = {
            "version": 1,
            "fingerprint": "not-this-campaign",
            "n_trials": 20,
            "seed": 3,
        }
        path.write_text(json.dumps(header) + "\n")
        result = make_campaign().run(20, seed=3, checkpoint_path=str(path))
        assert result.stats.resumed == 0
        assert result.stats.completed == 20
        # the stale file was replaced with this campaign's header
        first = json.loads(path.read_text().splitlines()[0])
        campaign = make_campaign()
        assert first["fingerprint"] == campaign_fingerprint(campaign, 20, 3)

    def test_torn_tail_tolerated(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        with pytest.raises(RuntimeError):
            make_campaign().run(
                20,
                seed=3,
                checkpoint_path=path,
                on_trial=lambda i, r: (_ for _ in ()).throw(RuntimeError)
                if i >= 9
                else None,
            )
        with open(path, "a") as fh:
            fh.write('{"i": 15, "site_index"')  # torn write from a kill
        resumed = make_campaign().run(20, seed=3, checkpoint_path=path)
        assert resumed.stats.resumed + resumed.stats.completed == 20
        reference = make_campaign().run(20, seed=3)
        assert [record_key(r) for r in resumed.records] == [
            record_key(r) for r in reference.records
        ]

    def test_fingerprint_sensitivity(self):
        campaign = make_campaign()
        base = campaign_fingerprint(campaign, 20, 3)
        assert campaign_fingerprint(campaign, 21, 3) != base
        assert campaign_fingerprint(campaign, 20, 4) != base
        assert campaign_fingerprint(make_campaign(), 20, 3) == base


class TestTrialRecordSerialization:
    def test_round_trip(self):
        campaign = make_campaign()
        result = campaign.run(10, seed=1)
        module = campaign.interp.module
        eligible = injectable_instructions(module)
        for record in result.records:
            data = record.to_dict()
            json.dumps(data)  # must be JSON-compatible
            back = TrialRecord.from_dict(data, module)
            assert back.site.instruction is record.site.instruction
            assert record_key(back) == record_key(record)
            # bulk form takes the precomputed site list
            again = TrialRecord.from_dict(data, eligible)
            assert again.site.instruction is record.site.instruction

    def test_opcode_mismatch_rejected(self):
        campaign = make_campaign()
        result = campaign.run(4, seed=1)
        data = result.records[0].to_dict()
        data["opcode"] = "definitely-not-an-opcode"
        with pytest.raises(ValueError):
            TrialRecord.from_dict(data, campaign.interp.module)


class TestStats:
    def test_recording_and_snapshot(self):
        stats = CampaignStats(n_trials=10, n_jobs=2)
        for _ in range(4):
            stats.record(Outcome.MASKED, 0.010)
        stats.record(Outcome.SOC, 1.5)
        stats.finish()
        assert stats.completed == 5
        assert stats.outcome_counts == {"masked": 4, "soc": 1}
        assert stats.mean_latency("masked") == pytest.approx(0.010)
        assert 0.0 <= stats.utilization <= 1.0
        assert stats.remaining == 5
        snapshot = stats.as_dict()
        json.dumps(snapshot)
        assert snapshot["outcomes"] == {"masked": 4, "soc": 1}
        assert sum(snapshot["latency_histograms"]["masked"]) == 4
        assert "trials/s" in stats.progress_line()


class TestForkMap:
    def test_serial_fallback_preserves_order(self):
        out = list(fork_map(lambda x: x * x, [1, 2, 3, 4], n_jobs=1))
        assert out == [1, 4, 9, 16]

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_parallel_same_results(self):
        out = list(fork_map(lambda x: x * x, list(range(20)), n_jobs=3, chunk_size=4))
        assert sorted(out) == [x * x for x in range(20)]


class TestCacheKeys:
    def test_sanitized_keys_do_not_collide(self, tmp_path, monkeypatch):
        monkeypatch.setenv("IPAS_CACHE_DIR", str(tmp_path))
        assert cache._path_for("eval-a/b") != cache._path_for("eval-a:b")

    def test_safe_keys_keep_historical_paths(self, tmp_path, monkeypatch):
        monkeypatch.setenv("IPAS_CACHE_DIR", str(tmp_path))
        path = cache._path_for("fulleval-fft-default-s0")
        assert path.name == f"v{cache.SCHEMA_VERSION}-fulleval-fft-default-s0.json"

    def test_distinct_raw_keys_round_trip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("IPAS_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("IPAS_NO_CACHE", raising=False)
        cache.store("exp/one", {"v": 1})
        cache.store("exp:one", {"v": 2})
        assert cache.load("exp/one") == {"v": 1}
        assert cache.load("exp:one") == {"v": 2}
