"""Dominance edge cases for `repro.ir.verifier`: phi nodes in natural-loop
headers (back-edge incoming values), definitions in unreachable blocks,
self-referential phis, and the matching negative cases the verifier must
reject."""

import pytest

from repro.ir import (
    I64,
    IRBuilder,
    Module,
    const_int,
    verify_module,
)
from repro.ir.verifier import VerificationError


def make_counting_loop():
    """entry -> header <-> latch, header -> exit; phi i in the header."""
    m = Module("loop")
    fn = m.add_function("main", I64, [I64], ["n"])
    entry = fn.add_block("entry")
    header = fn.add_block("header")
    latch = fn.add_block("latch")
    exit_ = fn.add_block("exit")

    IRBuilder(entry).br(header)

    hb = IRBuilder(header)
    phi = hb.phi(I64, name="i")
    cond = hb.icmp("slt", phi, fn.args[0], name="cond")
    hb.cond_br(cond, latch, exit_)

    lb = IRBuilder(latch)
    next_i = lb.add(phi, const_int(1), name="i.next")
    lb.br(header)

    IRBuilder(exit_).ret(phi)

    phi.add_incoming(const_int(0), entry)
    phi.add_incoming(next_i, latch)
    return m, fn, phi, next_i, header, latch, entry, exit_


class TestLoopHeaderPhis:
    def test_back_edge_incoming_is_valid(self):
        # The canonical natural loop: i.next is defined in the latch and
        # flows into the header phi along the back edge.  The def does not
        # dominate the header, but it dominates the *edge* — valid SSA.
        m, *_ = make_counting_loop()
        verify_module(m)

    def test_self_referential_phi_is_valid(self):
        # i = phi [0, entry], [i, latch]: the phi is its own incoming
        # value along the back edge.  The header dominates the latch, so
        # the def-dominates-edge rule holds.
        m = Module("selfphi")
        fn = m.add_function("main", I64, [I64], ["n"])
        entry = fn.add_block("entry")
        header = fn.add_block("header")
        latch = fn.add_block("latch")
        exit_ = fn.add_block("exit")
        IRBuilder(entry).br(header)
        hb = IRBuilder(header)
        phi = hb.phi(I64, name="i")
        cond = hb.icmp("slt", phi, fn.args[0], name="cond")
        hb.cond_br(cond, latch, exit_)
        IRBuilder(latch).br(header)
        IRBuilder(exit_).ret(phi)
        phi.add_incoming(const_int(0), entry)
        phi.add_incoming(phi, latch)
        verify_module(m)

    def test_incoming_that_does_not_dominate_edge_rejected(self):
        # Swap the phi wiring: the latch-defined value claims to arrive
        # from entry, which its def cannot dominate.
        m, fn, phi, next_i, header, latch, entry, exit_ = make_counting_loop()
        phi.incoming_blocks[0], phi.incoming_blocks[1] = (
            phi.incoming_blocks[1],
            phi.incoming_blocks[0],
        )
        with pytest.raises(VerificationError, match="does not dominate edge"):
            verify_module(m)

    def test_loop_body_def_used_after_loop_rejected(self):
        # A value defined in the latch does not dominate the exit block
        # (the header can exit without ever running the latch).
        m, fn, phi, next_i, header, latch, entry, exit_ = make_counting_loop()
        ret = exit_.terminator
        ret.set_operand(0, next_i)
        with pytest.raises(VerificationError, match="does not dominate"):
            verify_module(m)


class TestUnreachableDefs:
    def make_unreachable(self):
        m = Module("unreach")
        fn = m.add_function("main", I64, [I64], ["x"])
        entry = fn.add_block("entry")
        dead = fn.add_block("dead")  # no predecessors
        eb = IRBuilder(entry)
        v = eb.add(fn.args[0], const_int(1), name="v")
        eb.ret(v)
        db = IRBuilder(dead)
        ghost = db.add(fn.args[0], const_int(7), name="ghost")
        db.ret(ghost)
        return m, fn, entry, dead, ghost

    def test_def_inside_unreachable_block_is_tolerated(self):
        # Dominance is undefined off the reachable subgraph; the verifier
        # must not crash on (or reject) dead self-contained code.
        m, *_ = self.make_unreachable()
        verify_module(m)

    def test_reachable_use_of_unreachable_def_is_tolerated(self):
        # LLVM semantics: any use dominated by an unreachable def is
        # itself never executed meaningfully; the verifier skips defs in
        # unreachable blocks rather than reporting a spurious error.
        m, fn, entry, dead, ghost = self.make_unreachable()
        entry.terminator.set_operand(0, ghost)
        verify_module(m)

    def test_use_before_def_in_same_block_rejected(self):
        m = Module("order")
        fn = m.add_function("main", I64, [I64], ["x"])
        entry = fn.add_block("entry")
        b = IRBuilder(entry)
        first = b.add(fn.args[0], const_int(1), name="first")
        second = b.add(first, const_int(2), name="second")
        b.ret(second)
        # Move `second` before `first` by hand.
        entry.instructions.remove(second)
        entry.instructions.insert(0, second)
        with pytest.raises(VerificationError, match="used before defined"):
            verify_module(m)

    def test_branch_only_def_used_at_merge_rejected(self):
        # entry splits; a value defined in one arm cannot be used at the
        # join without a phi.
        m = Module("merge")
        fn = m.add_function("main", I64, [I64], ["x"])
        entry = fn.add_block("entry")
        left = fn.add_block("left")
        right = fn.add_block("right")
        join = fn.add_block("join")
        eb = IRBuilder(entry)
        cond = eb.icmp("slt", fn.args[0], const_int(10), name="cond")
        eb.cond_br(cond, left, right)
        lb = IRBuilder(left)
        only_left = lb.add(fn.args[0], const_int(1), name="only.left")
        lb.br(join)
        IRBuilder(right).br(join)
        IRBuilder(join).ret(only_left)
        with pytest.raises(VerificationError, match="does not dominate"):
            verify_module(m)
