"""Tests for the protection-coverage prover (`repro.analysis.coverage`) and
the static-vs-dynamic consistency sanitizer (`repro.faults.sanitizer`):
verdict semantics on hand-built IR, guard-cut logic under full duplication,
the structural check-discovery fallback, the exhaustive audit property
(no DETECTED/MASKED-verdict site may produce a dynamic SOC), and the
sanitizer contract on forged campaign records."""

import pytest

from repro import compile_source
from repro.analysis import (
    CoverageAnalysis,
    CoverageReport,
    Verdict,
    coverage_report,
)
from repro.analysis.coverage import is_coverage_site
from repro.faults import (
    Campaign,
    CoverageViolation,
    FaultSite,
    Outcome,
    TrialRecord,
    injectable_instructions,
    module_is_protected,
    sanitize_records,
    sanitizer_enabled,
)
from repro.interp import Interpreter
from repro.ir import (
    F64,
    I64,
    IRBuilder,
    Module,
    const_int,
    verify_module,
)
from repro.protect import FullDuplicationSelector, duplicate_instructions
from repro.workloads import get_workload

KERNEL = """
int n = 8;
output double result[2];

void main() {
    double s = 0.0;
    for (int i = 0; i < n; i = i + 1) {
        s = s + (double)i * 1.5;
    }
    result[0] = s;
    result[1] = s * 2.0;
}
"""


def protected(source=KERNEL, name="kernel"):
    module = compile_source(source, name=name)
    duplicate_instructions(module, FullDuplicationSelector().select(module))
    verify_module(module)
    return module


class TestVerdictSemantics:
    def test_unprotected_output_chain_escapes(self):
        module = compile_source(KERNEL)
        report = coverage_report(module)
        assert report.sites, "kernel must expose fault sites"
        assert not report.with_verdict(Verdict.DETECTED)
        # The accumulator feeds the output array: it must not be MASKED.
        escaping = {s.name for s in report.with_verdict(Verdict.ESCAPES)}
        assert escaping, "stores to the output global must escape"

    def test_dead_value_is_masked(self):
        m = Module("t")
        fn = m.add_function("main", I64, [I64], ["x"])
        b = IRBuilder(fn.add_block("entry"))
        dead = b.add(fn.args[0], const_int(1), name="dead")
        live = b.mul(fn.args[0], const_int(2), name="live")
        b.ret(live)
        verify_module(m)
        analysis = CoverageAnalysis(m)
        assert analysis.classify(dead).verdict is Verdict.MASKED
        assert analysis.classify(dead).masked_bits == 64
        # The returned value escapes through main's return.
        assert analysis.classify(live).verdict is Verdict.ESCAPES

    def test_fully_killed_bits_are_masked(self):
        m = Module("t")
        fn = m.add_function("main", I64, [I64], ["x"])
        b = IRBuilder(fn.add_block("entry"))
        v = b.add(fn.args[0], const_int(1), name="v")
        killed = b.and_(v, const_int(0), name="killed")
        b.ret(killed)
        verify_module(m)
        analysis = CoverageAnalysis(m)
        # Every bit of v dies in the and-with-zero: provably masked.
        assert analysis.classify(v).verdict is Verdict.MASKED
        assert analysis.classify(v).masked_bits == 64

    def test_partial_kill_counts_masked_bits_but_still_flows(self):
        m = Module("t")
        fn = m.add_function("main", I64, [I64], ["x"])
        b = IRBuilder(fn.add_block("entry"))
        v = b.add(fn.args[0], const_int(1), name="v")
        low = b.and_(v, const_int(0xFF), name="low")
        b.ret(low)
        verify_module(m)
        analysis = CoverageAnalysis(m)
        site = analysis.classify(v)
        assert site.verdict is Verdict.ESCAPES  # low byte reaches the return
        assert site.masked_bits == 56
        assert site.total_bits == 64

    def test_full_duplication_yields_detected_sites(self):
        module = protected()
        report = coverage_report(module)
        summary = report.summary()
        assert summary["detected"] > 0
        assert summary["sites"] == summary["detected"] + summary[
            "masked"
        ] + summary["escapes"]
        # A detected site records which guards cover it.
        detected = report.with_verdict(Verdict.DETECTED)
        assert all(s.guards > 0 for s in detected)
        assert all(not s.escapes for s in detected)

    def test_detected_sites_only_on_protected_modules(self):
        clean = compile_source(KERNEL)
        assert not coverage_report(clean).with_verdict(Verdict.DETECTED)

    def test_structural_fallback_matches_metadata(self):
        module = protected()
        with_meta = coverage_report(module).summary()
        # Strip the duplication metadata: pairing must be recovered from
        # the ipas.check.* calls themselves.
        del module.check_sites
        del module.duplicate_map
        without_meta = coverage_report(module).summary()
        assert with_meta == without_meta

    def test_report_serialisation(self):
        import json

        report = coverage_report(protected())
        payload = report.to_dict()
        json.dumps(payload)  # must be JSON-compatible
        assert payload["summary"] == report.summary()
        assert len(payload["sites"]) == len(report.sites)
        for entry in payload["sites"]:
            assert entry["verdict"] in {v.value for v in Verdict}

    def test_verdict_of_and_site_identity(self):
        module = protected()
        report = coverage_report(module)
        for site in report.sites[:5]:
            assert report.verdict_of(site.instruction) is site.verdict
            assert is_coverage_site(site.instruction)


class TestExhaustiveAudit:
    """The acceptance property: across every executed static fault site of a
    fig8-scale kernel, no site the prover classifies DETECTED or MASKED may
    complete as a dynamic SOC."""

    def test_is_workload_audit(self):
        module = get_workload("is").compile()
        duplicate_instructions(
            module, FullDuplicationSelector().select(module)
        )
        analysis = CoverageAnalysis(module)
        campaign = Campaign(Interpreter(module))
        campaign.prepare()
        soc_verdicts = []
        for inst, _count in campaign._sites:
            bits = inst.type.bits if not inst.type.is_pointer() else 64
            for bit in (0, bits - 1):
                record = campaign.run_site(FaultSite(inst, 1, bit))
                if record.outcome is Outcome.SOC:
                    soc_verdicts.append(
                        (analysis.classify(inst).verdict, record)
                    )
        bad = [
            (v, r) for v, r in soc_verdicts if v is not Verdict.ESCAPES
        ]
        assert not bad, (
            f"{len(bad)} SOC trials at non-ESCAPES sites: "
            + "; ".join(str(r.site) for _v, r in bad[:5])
        )


class TestSanitizer:
    def make_forged_soc(self):
        """A protected module plus a forged SOC record at a DETECTED site."""
        module = protected()
        analysis = CoverageAnalysis(module)
        detected = next(
            inst
            for inst in injectable_instructions(module)
            if analysis.classify(inst).verdict is Verdict.DETECTED
        )
        record = TrialRecord(
            FaultSite(detected, 1, 0), Outcome.SOC, "ok", 123
        )
        return module, record

    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv("IPAS_SANITIZE", raising=False)
        assert sanitizer_enabled()
        monkeypatch.setenv("IPAS_SANITIZE", "0")
        assert not sanitizer_enabled()

    def test_forged_soc_at_detected_site_raises(self):
        module, record = self.make_forged_soc()
        with pytest.raises(CoverageViolation) as exc:
            sanitize_records([record], module)
        assert "coverage violation" in str(exc.value)
        assert exc.value.verdict is Verdict.DETECTED
        assert exc.value.record is record

    def test_violation_is_assertion_error(self):
        module, record = self.make_forged_soc()
        with pytest.raises(AssertionError):
            sanitize_records([record], module)

    def test_disabled_by_env(self, monkeypatch):
        module, record = self.make_forged_soc()
        monkeypatch.setenv("IPAS_SANITIZE", "0")
        sanitize_records([record], module)  # must not raise

    def test_none_holes_and_non_soc_records_ignored(self):
        module, record = self.make_forged_soc()
        benign = TrialRecord(record.site, Outcome.DETECTED, "detected", 50)
        sanitize_records([None, benign], module)  # must not raise

    def test_unprotected_module_skipped(self):
        module = compile_source(KERNEL)
        assert not module_is_protected(module)
        inst = injectable_instructions(module)[0]
        record = TrialRecord(FaultSite(inst, 1, 0), Outcome.SOC, "ok", 99)
        sanitize_records([record], module)  # every SOC is legitimate

    def test_protected_module_detected(self):
        assert module_is_protected(protected())

    def test_campaign_path_runs_sanitizer_clean(self):
        # A real (small) protected campaign must pass through the
        # parent-side sanitizer without firing.
        from repro.faults.parallel import run_campaign

        module = protected()
        campaign = Campaign(Interpreter(module))
        result = run_campaign(campaign, n_trials=24, seed=3, n_jobs=1)
        assert result.counts.total == 24
