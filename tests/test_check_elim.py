"""Tests for check-redundancy elimination (`repro.passes.check_elim`):
subsumption under naive per-instruction check placement, bit-identical
golden outputs, preserved detection outcomes on paired injection trials,
protected-run cycle reduction, metadata refresh, and the near-optimality
of the default tail placement."""

import pytest

from repro import compile_source
from repro.faults import Campaign, FaultSite, Outcome, OutputVerifier
from repro.interp import Interpreter, run_module
from repro.ir import is_check_intrinsic, verify_module
from repro.passes import (
    CheckEliminationPass,
    eliminate_redundant_checks,
)
from repro.protect import (
    DuplicationPass,
    FullDuplicationSelector,
    duplicate_instructions,
)
from repro.workloads import get_workload

# An integer-heavy kernel: long add/xor chains are exactly the injective
# steps whose intermediate checks naive placement makes redundant.
INT_KERNEL = """
int n = 16;
output int result[2];

void main() {
    int acc = 0;
    int mix = 1;
    for (int i = 0; i < n; i = i + 1) {
        acc = acc + i * 3;
        mix = (mix + acc) ^ i;
    }
    result[0] = acc;
    result[1] = mix;
}
"""


def protect(module, placement):
    pass_ = DuplicationPass(module, check_placement=placement)
    report = pass_.run(FullDuplicationSelector().select(module))
    verify_module(module)
    return report


def count_checks(module):
    from repro.ir.instructions import CallInst

    return sum(
        1
        for inst in module.instructions()
        if isinstance(inst, CallInst) and is_check_intrinsic(inst.callee)
    )


class TestSubsumption:
    def test_every_placement_has_redundancy(self):
        module = compile_source(INT_KERNEL)
        protect(module, "every")
        before = count_checks(module)
        report = eliminate_redundant_checks(module)
        verify_module(module)
        assert report.checks_before == before
        assert report.checks_removed > 0
        assert report.checks_after == count_checks(module)
        assert report.duplicates_removed >= 0
        # Every removal names its subsumer.
        assert len(report.removed) == report.checks_removed
        for where, subsumer in report.removed:
            assert "/" in where and "/" in subsumer

    def test_tail_placement_is_near_optimal(self):
        # The paper's duplication-path tails feed loads/stores/phis/
        # branches/comparisons — non-injective sinks — so strict
        # subsumption finds (almost) nothing to remove.
        module = compile_source(INT_KERNEL)
        protect(module, "tails")
        report = eliminate_redundant_checks(module)
        assert report.checks_removed == 0

    def test_idempotent(self):
        module = compile_source(INT_KERNEL)
        protect(module, "every")
        eliminate_redundant_checks(module)
        second = eliminate_redundant_checks(module)
        assert second.checks_removed == 0

    def test_report_serialisation(self):
        import json

        module = compile_source(INT_KERNEL)
        protect(module, "every")
        payload = eliminate_redundant_checks(module).to_dict()
        json.dumps(payload)
        assert payload["checks_after"] == (
            payload["checks_before"] - payload["checks_removed"]
        )


class TestPreservation:
    def test_golden_output_bit_identical(self):
        clean_result, clean_interp = run_module(compile_source(INT_KERNEL))
        module = compile_source(INT_KERNEL)
        protect(module, "every")
        eliminate_redundant_checks(module)
        result, interp = run_module(module)
        assert result.status == "ok"
        verifier = OutputVerifier()
        assert verifier.capture(interp) == verifier.capture(clean_interp)

    def test_protected_run_gets_cheaper(self):
        module = compile_source(INT_KERNEL)
        protect(module, "every")
        _, before_interp = run_module(module)
        before_cycles = before_interp.cycles
        report = eliminate_redundant_checks(module)
        assert report.checks_removed > 0
        _, after_interp = run_module(module)
        assert after_interp.cycles < before_cycles

    def test_detection_outcomes_preserved(self):
        """Paired trials: the same static fault plan must classify
        identically before and after elimination."""

        def outcomes(module):
            campaign = Campaign(Interpreter(module))
            campaign.prepare()
            results = []
            for inst, _count in campaign._sites:
                bits = inst.type.bits if not inst.type.is_pointer() else 64
                key = (
                    inst.function.name,
                    inst.parent.name,
                    inst.opcode,
                    inst.name,
                )
                record = campaign.run_site(FaultSite(inst, 1, bits // 2))
                results.append((key, record.outcome))
            return results

        baseline_module = compile_source(INT_KERNEL)
        protect(baseline_module, "every")
        eliminated_module = compile_source(INT_KERNEL)
        protect(eliminated_module, "every")
        eliminate_redundant_checks(eliminated_module)

        baseline = dict(outcomes(baseline_module))
        after = dict(outcomes(eliminated_module))
        # Surviving sites (clone erasure removes some shadow sites) must
        # keep their exact outcome; no detection may degrade to SOC.
        shared = set(baseline) & set(after)
        assert shared
        assert not any(
            baseline[key] is Outcome.DETECTED and after[key] is Outcome.SOC
            for key in shared
        )
        mismatches = [
            key for key in shared if baseline[key] is not after[key]
        ]
        assert not mismatches, f"outcome drift at {mismatches[:5]}"

    def test_workload_golden_identical_after_elimination(self):
        module = get_workload("is").compile()
        reference = get_workload("is").compile()
        duplicate_instructions(
            module,
            FullDuplicationSelector().select(module),
            check_placement="every",
        )
        eliminate_redundant_checks(module)
        verify_module(module)
        _, interp = run_module(module)
        _, ref_interp = run_module(reference)
        verifier = OutputVerifier()
        assert verifier.capture(interp) == verifier.capture(ref_interp)


class TestMetadata:
    def test_check_sites_and_duplicate_map_refreshed(self):
        module = compile_source(INT_KERNEL)
        protect(module, "every")
        report = eliminate_redundant_checks(module)
        assert report.checks_removed > 0
        for site in module.check_sites:
            assert site.check.parent is not None
        for clone in module.duplicate_map.values():
            assert clone.parent is not None
        assert len(module.check_sites) == report.checks_after

    def test_runs_without_metadata(self):
        module = compile_source(INT_KERNEL)
        protect(module, "every")
        with_meta = eliminate_redundant_checks(
            _reprotect(INT_KERNEL)
        ).checks_removed
        del module.check_sites
        del module.duplicate_map
        report = CheckEliminationPass(module).run()
        verify_module(module)
        # Structural recovery sees every checked pair, so it removes the
        # same checks as the metadata path.
        assert report.checks_removed == with_meta


def _reprotect(source):
    module = compile_source(source)
    protect(module, "every")
    return module
