"""Unit tests for the guarded runtime math and the cycle cost model."""

import math

import pytest

from repro.interp.costmodel import CostModel
from repro.interp.runtime import (
    double_to_int_bits,
    guarded_exp,
    guarded_fmax,
    guarded_fmin,
    guarded_log,
    guarded_pow,
    guarded_sqrt,
    int_bits_to_double,
)
from repro.ir import (
    F64,
    I64,
    IRBuilder,
    Module,
    const_float,
    const_int,
)


class TestGuardedMath:
    """The wrappers must give C-library semantics, never Python exceptions —
    a bit-flipped operand can reach any edge case."""

    def test_sqrt_negative_is_nan(self):
        assert math.isnan(guarded_sqrt(-4.0))

    def test_sqrt_nan_propagates(self):
        assert math.isnan(guarded_sqrt(float("nan")))

    def test_sqrt_inf(self):
        assert guarded_sqrt(float("inf")) == float("inf")

    def test_exp_overflow_is_inf(self):
        assert guarded_exp(1e6) == float("inf")

    def test_exp_normal(self):
        assert guarded_exp(0.0) == 1.0

    def test_log_of_zero_is_neg_inf(self):
        assert guarded_log(0.0) == -float("inf")

    def test_log_of_negative_is_nan(self):
        assert math.isnan(guarded_log(-1.0))

    def test_pow_overflow_is_inf(self):
        assert guarded_pow(1e300, 2.0) == float("inf")

    def test_pow_negative_fractional_is_nan(self):
        assert math.isnan(guarded_pow(-2.0, 0.5))

    def test_fmin_fmax_nan_semantics(self):
        nan = float("nan")
        # C fmin/fmax: if one argument is NaN, return the other.
        assert guarded_fmin(nan, 3.0) == 3.0
        assert guarded_fmax(3.0, nan) == 3.0
        assert math.isnan(guarded_fmin(nan, nan))

    def test_fmin_fmax_ordering(self):
        assert guarded_fmin(2.0, 3.0) == 2.0
        assert guarded_fmax(2.0, 3.0) == 3.0

    def test_bitcast_roundtrip(self):
        for x in (0.0, 1.5, -2.25, 1e300, -0.0):
            assert int_bits_to_double(double_to_int_bits(x)) == x

    def test_bitcast_signed_result(self):
        # -0.0 has the sign bit set: as a signed i64 that's negative.
        assert double_to_int_bits(-0.0) < 0
        assert double_to_int_bits(0.0) == 0


class TestCostModel:
    def make_block(self):
        m = Module("t")
        fn = m.add_function("f", F64, [F64, I64], ["x", "i"])
        b = IRBuilder(fn.add_block("entry"))
        b.fmul(fn.args[0], fn.args[0])
        b.fdiv(fn.args[0], const_float(3.0))
        b.add(fn.args[1], const_int(1))
        b.ret(fn.args[0])
        return m, fn

    def test_divides_cost_more_than_adds(self):
        cm = CostModel()
        m, fn = self.make_block()
        costs = {i.opcode: cm.instruction_cost(i) for i in fn.instructions()}
        assert costs["fdiv"] > costs["fmul"] > costs["add"]

    def test_block_cost_is_sum(self):
        cm = CostModel()
        m, fn = self.make_block()
        block = fn.entry
        assert cm.block_cost(block) == sum(
            cm.instruction_cost(i) for i in block.instructions
        )

    def test_override_costs(self):
        cm = CostModel({"add": 50})
        m, fn = self.make_block()
        add = next(i for i in fn.instructions() if i.opcode == "add")
        assert cm.instruction_cost(add) == 50

    def test_intrinsic_call_costs(self):
        m = Module("t")
        fn = m.add_function("f", F64, [F64], ["x"])
        b = IRBuilder(fn.add_block("entry"))
        s = b.call_intrinsic("sqrt", [fn.args[0]])
        r = b.call_intrinsic("mpi_allreduce_sum_f64", [s])
        b.ret(r)
        cm = CostModel()
        insts = list(fn.instructions())
        sqrt_cost = cm.instruction_cost(insts[0])
        mpi_cost = cm.instruction_cost(insts[1])
        # Collectives carry a latency charge beyond a libm call.
        assert mpi_cost > sqrt_cost > cm.opcode_costs["call"]

    def test_check_intrinsic_is_cheap(self):
        from repro.ir import VOID

        m = Module("t")
        check = m.declare_function("ipas.check.f64", VOID, [F64, F64])
        fn = m.add_function("f", VOID, [F64], ["x"])
        b = IRBuilder(fn.add_block("entry"))
        b.call(check, [fn.args[0], fn.args[0]])
        b.ret()
        cm = CostModel()
        call = next(iter(fn.instructions()))
        # A check lowers to compare + predicted branch: ~2 cycles.
        assert cm.instruction_cost(call) == cm.opcode_costs["ipas.check"]

    def test_module_static_cost(self):
        cm = CostModel()
        m, fn = self.make_block()
        assert cm.module_static_cost(m) == cm.function_static_cost(fn) > 0

    def test_unknown_opcode_raises(self):
        cm = CostModel()
        m, fn = self.make_block()
        inst = fn.entry.instructions[0]
        inst.opcode = "quantum_fma"
        with pytest.raises(KeyError):
            cm.instruction_cost(inst)
