"""Fuzz tests: the frontends must fail *gracefully* on malformed input.

Property: for arbitrary (including mutated previously-valid) source text,
the scil frontend raises only ScilError subclasses and the IR text parser
raises only IRParseError — never an unrelated exception or a crash.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.frontend import ScilError, compile_to_ir, parse as scil_parse, tokenize
from repro.frontend.errors import LexError
from repro.ir import IRParseError, parse_module, print_module

VALID_SCIL = """
int n = 8;
output double r[2];
double work(double a[], int n) {
    double s = 0.0;
    for (int i = 0; i < n; i = i + 1) { s = s + a[i] * a[i]; }
    return sqrt(s);
}
void main() {
    double x[8];
    for (int i = 0; i < n; i = i + 1) { x[i] = (double)i; }
    r[0] = work(x, n);
}
"""

printable = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=200
)


def mutate(source: str, position: int, junk: str) -> str:
    cut = position % (len(source) + 1)
    return source[:cut] + junk + source[cut + len(junk):]


class TestScilFuzz:
    @settings(max_examples=60, deadline=None)
    @given(printable)
    def test_arbitrary_text_fails_cleanly(self, text):
        try:
            compile_to_ir(text)
        except ScilError:
            pass  # the only acceptable failure mode

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.text(
            alphabet=st.characters(min_codepoint=33, max_codepoint=126),
            min_size=1,
            max_size=8,
        ),
    )
    def test_mutated_valid_program_fails_cleanly(self, position, junk):
        mutated = mutate(VALID_SCIL, position, junk)
        try:
            module = compile_to_ir(mutated)
        except ScilError:
            return
        # If it still compiled, the module must be well-formed.
        assert module.static_instruction_count > 0

    @settings(max_examples=40, deadline=None)
    @given(printable)
    def test_lexer_total(self, text):
        try:
            tokens = tokenize(text)
        except LexError:
            return
        assert tokens[-1].kind == "eof"


class TestIRTextFuzz:
    @settings(max_examples=50, deadline=None)
    @given(printable)
    def test_arbitrary_text_fails_cleanly(self, text):
        try:
            parse_module(text)
        except IRParseError:
            pass

    @settings(max_examples=50, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.text(
            alphabet=st.characters(min_codepoint=33, max_codepoint=126),
            min_size=1,
            max_size=6,
        ),
    )
    def test_mutated_ir_fails_cleanly(self, position, junk):
        valid = print_module(compile_to_ir(VALID_SCIL))
        mutated = mutate(valid, position, junk)
        try:
            module = parse_module(mutated)
        except IRParseError:
            return
        # Structurally parsed; it may or may not verify, but parsing must
        # not have produced a module that crashes the printer.
        print_module(module)
