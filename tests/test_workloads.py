"""Tests for the evaluation workloads (paper Tables 2, 3, 5) plus the
long-horizon ``particles`` N-body workload."""

import pytest

from repro.faults import Campaign, Outcome
from repro.interp import Interpreter
from repro.ir import verify_module
from repro.workloads import (
    WORKLOAD_NAMES,
    all_workloads,
    get_workload,
)

ALL = list(WORKLOAD_NAMES)


@pytest.fixture(scope="module")
def compiled():
    """Compile each workload once for the whole module."""
    result = {}
    for name in ALL:
        w = get_workload(name)
        result[name] = (w, w.compile())
    return result


class TestRegistry:
    def test_registered_workloads(self):
        assert ALL == ["comd", "hpccg", "amg", "fft", "is", "particles"]
        assert len(all_workloads()) == 6

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="available"):
            get_workload("linpack")

    def test_case_insensitive(self):
        assert get_workload("CoMD").name == "comd"


class TestCompilation:
    @pytest.mark.parametrize("name", ALL)
    def test_compiles_and_verifies(self, compiled, name):
        _, module = compiled[name]
        verify_module(module)
        assert module.static_instruction_count > 100

    @pytest.mark.parametrize("name", ALL)
    def test_has_output_globals(self, compiled, name):
        _, module = compiled[name]
        assert module.output_globals()

    def test_table3_size_ordering(self, compiled):
        """Paper Table 3: FFT is the smallest code; mini-apps are larger
        than kernels in lines of code."""
        loc = {name: compiled[name][0].lines_of_code for name in ALL}
        assert loc["fft"] < loc["comd"]
        assert loc["is"] < loc["amg"]

    @pytest.mark.parametrize("name", ALL)
    def test_four_inputs(self, compiled, name):
        workload, _ = compiled[name]
        assert set(workload.inputs) == {1, 2, 3, 4}
        assert set(workload.input_labels) == {1, 2, 3, 4}


class TestGoldenRuns:
    @pytest.mark.parametrize("name", ALL)
    def test_runs_clean_and_verifies(self, compiled, name):
        workload, module = compiled[name]
        interp = workload.make_interpreter(1, module=module)
        result = interp.run()
        assert result.status == "ok", result.error
        verifier = workload.verifier()
        golden = verifier.capture(interp)
        assert verifier.check(interp, golden)

    @pytest.mark.parametrize("name", ALL)
    def test_deterministic(self, compiled, name):
        workload, module = compiled[name]
        interp = workload.make_interpreter(1, module=module)
        r1 = interp.run()
        r2 = interp.run()
        assert r1.cycles == r2.cycles

    @pytest.mark.parametrize("name", ALL)
    def test_larger_input_costs_more(self, compiled, name):
        workload, module = compiled[name]
        small = workload.make_interpreter(1, module=module)
        c_small = small.run().cycles
        large = workload.make_interpreter(2, module=module)
        c_large = large.run().cycles
        assert c_large > c_small


class TestMpiConsistency:
    @pytest.mark.parametrize("name", ALL)
    def test_two_ranks_match_serial_outputs(self, compiled, name):
        workload, module = compiled[name]
        serial = workload.make_interpreter(1, module=module)
        assert serial.run().status == "ok"
        job = workload.make_job(2, 1, module=workload.compile())
        result = job.run()
        assert result.status == "ok"
        for gv in module.output_globals():
            a = serial.read_global(gv.name)
            b = job.read_global(gv.name, 0)
            if isinstance(a, list):
                for x, y in zip(a, b):
                    assert x == pytest.approx(y, rel=1e-9, abs=1e-12)
            else:
                assert a == pytest.approx(b, rel=1e-9, abs=1e-12)


class TestFaultSensitivity:
    """Every workload must exhibit the full outcome taxonomy under faults
    — otherwise it cannot train IPAS."""

    @pytest.mark.parametrize("name", ["is", "comd", "hpccg"])
    def test_campaign_has_soc_and_masking(self, compiled, name):
        workload, module = compiled[name]
        interp = workload.make_interpreter(1, module=module)
        campaign = Campaign(
            interp, verifier=workload.verifier(), budget_factor=workload.budget_factor
        )
        result = campaign.run(80, seed=42)
        assert result.counts.masked_fraction > 0.0
        assert result.counts.soc_fraction > 0.0
        assert result.counts.symptom_fraction > 0.0

    def test_verifier_rejects_corrupted_output(self, compiled):
        workload, module = compiled["is"]
        interp = workload.make_interpreter(1, module=module)
        interp.run()
        verifier = workload.verifier()
        golden = verifier.capture(interp)
        # Corrupt the sorted output in place: break sortedness.
        base = interp.cm.global_addr["sorted_keys"]
        interp.cells[base], interp.cells[base + 1] = 255, 0
        assert not verifier.check(interp, golden)

    def test_hpccg_verifier_requires_convergence(self, compiled):
        workload, module = compiled["hpccg"]
        interp = workload.make_interpreter(1, module=module)
        interp.run()
        verifier = workload.verifier()
        golden = verifier.capture(interp)
        stats_base = interp.cm.global_addr["solve_stats"]
        interp.cells[stats_base + 2] = 0.0  # flip the converged flag
        assert not verifier.check(interp, golden)

    def test_comd_verifier_rejects_energy_drift(self, compiled):
        workload, module = compiled["comd"]
        interp = workload.make_interpreter(1, module=module)
        interp.run()
        verifier = workload.verifier()
        golden = verifier.capture(interp)
        base = interp.cm.global_addr["energies"]
        interp.cells[base + 1] = interp.cells[base + 1] + 1.0
        assert not verifier.check(interp, golden)

    def test_amg_verifier_rejects_corrupt_input(self, compiled):
        workload, module = compiled["amg"]
        interp = workload.make_interpreter(1, module=module)
        interp.run()
        verifier = workload.verifier()
        golden = verifier.capture(interp)
        base = interp.cm.global_addr["rhs"]
        interp.cells[base + 3] = interp.cells[base + 3] + 0.5
        assert not verifier.check(interp, golden)

    def test_amg_verifier_recomputes_residual(self, compiled):
        """A fault faking the converged flag must still be caught."""
        workload, module = compiled["amg"]
        interp = workload.make_interpreter(1, module=module)
        interp.run()
        verifier = workload.verifier()
        golden = verifier.capture(interp)
        # Corrupt the published solution but leave the flag saying 'converged'.
        base = interp.cm.global_addr["u"]
        interp.cells[base + 10] = interp.cells[base + 10] + 100.0
        assert not verifier.check(interp, golden)

    def test_fft_verifier_l2_threshold(self, compiled):
        workload, module = compiled["fft"]
        interp = workload.make_interpreter(1, module=module)
        interp.run()
        verifier = workload.verifier()
        golden = verifier.capture(interp)
        base = interp.cm.global_addr["out_re"]
        interp.cells[base] = interp.cells[base] + 1e-9
        assert verifier.check(interp, golden)  # below the 1e-6 L2 threshold
        interp.cells[base] = interp.cells[base] + 1.0
        assert not verifier.check(interp, golden)


class TestNumericalBehaviour:
    def test_hpccg_converges_on_all_inputs(self, compiled):
        workload, module = compiled["hpccg"]
        for input_id in (1, 2):
            interp = workload.make_interpreter(input_id, module=module)
            assert interp.run().status == "ok"
            stats = interp.read_global("solve_stats")
            assert stats[2] == 1.0, f"input {input_id} did not converge"

    def test_amg_converges_quickly(self, compiled):
        workload, module = compiled["amg"]
        interp = workload.make_interpreter(1, module=module)
        interp.run()
        stats = interp.read_global("cycle_stats")
        assert stats[2] == 1.0
        assert stats[0] <= 12  # textbook multigrid: a handful of V-cycles

    def test_comd_energy_drift_small(self, compiled):
        workload, module = compiled["comd"]
        interp = workload.make_interpreter(1, module=module)
        interp.run()
        e = interp.read_global("energies")
        assert abs(e[1] - e[0]) / abs(e[0]) < 1e-5

    def test_fft_roundtrip_accuracy(self, compiled):
        workload, module = compiled["fft"]
        interp = workload.make_interpreter(1, module=module)
        interp.run()
        import math

        n = interp.read_global("param_n")
        out = interp.read_global("out_re")
        expected = math.sin(2 * math.pi * (3 / n)) + 0.5 * math.cos(
            2 * math.pi * (3 / n) * 3
        )
        assert out[3] == pytest.approx(expected, abs=1e-10)

    def test_is_output_is_sorted_permutation_of_buckets(self, compiled):
        workload, module = compiled["is"]
        interp = workload.make_interpreter(1, module=module)
        interp.run()
        nkeys = interp.read_global("param_nkeys")
        keys = interp.read_global("sorted_keys")[:nkeys]
        assert keys == sorted(keys)
        assert all(0 <= k < 256 for k in keys)


class TestToleranceVerifier:
    def test_accepts_within_tolerance(self):
        from repro.interp import run_module
        from repro.workloads import ToleranceVerifier

        source = """
        output double r[2];
        void main() { r[0] = 1.0; r[1] = 2.0; }
        """
        from repro import compile_source

        module = compile_source(source)
        _, interp = run_module(module)
        verifier = ToleranceVerifier({"r": 1e-6})
        golden = verifier.capture(interp)
        assert verifier.check(interp, golden)
        # Perturb within tolerance: still accepted.
        base = interp.cm.global_addr["r"]
        interp.cells[base] += 1e-9
        assert verifier.check(interp, golden)
        # Beyond tolerance: rejected.
        interp.cells[base] += 1.0
        assert not verifier.check(interp, golden)

    def test_rejects_nan(self):
        from repro import compile_source
        from repro.interp import run_module
        from repro.workloads import ToleranceVerifier

        module = compile_source("output double r[1];\nvoid main() { r[0] = 1.0; }")
        _, interp = run_module(module)
        verifier = ToleranceVerifier({"r": 1e-3})
        golden = verifier.capture(interp)
        interp.cells[interp.cm.global_addr["r"]] = float("nan")
        assert not verifier.check(interp, golden)

    def test_scalar_global(self):
        from repro import compile_source
        from repro.interp import run_module
        from repro.workloads import ToleranceVerifier

        module = compile_source("double s = 4.0;\nvoid main() { s = 5.0; }")
        _, interp = run_module(module)
        verifier = ToleranceVerifier({"s": 0.5})
        golden = verifier.capture(interp)
        assert verifier.check(interp, golden)
        interp.cells[interp.cm.global_addr["s"]] = 6.0
        assert not verifier.check(interp, golden)
