"""Tests for the from-scratch ML stack: SVM/SMO, tree, k-NN, CV, metrics."""

import numpy as np
import pytest

from repro.ml import (
    SVC,
    DecisionTreeClassifier,
    GridSearch,
    KNeighborsClassifier,
    StandardScaler,
    accuracy,
    class_accuracies,
    cross_val_fscore,
    fscore_eq1,
    linear_kernel,
    paper_grid,
    rbf_kernel,
    squared_distances,
    stratified_kfold,
)


def blobs(n_per_class=40, separation=4.0, seed=0, imbalance=None):
    """Two Gaussian blobs in 2-D; imbalance shrinks class 1."""
    rng = np.random.RandomState(seed)
    n1 = n_per_class if imbalance is None else max(int(n_per_class * imbalance), 4)
    x0 = rng.randn(n_per_class, 2)
    x1 = rng.randn(n1, 2) + separation
    X = np.vstack([x0, x1])
    y = np.concatenate([np.zeros(n_per_class, dtype=int), np.ones(n1, dtype=int)])
    return X, y


def xor_data(n=120, seed=1):
    """The XOR pattern — linearly inseparable, needs the RBF kernel."""
    rng = np.random.RandomState(seed)
    X = rng.uniform(-1, 1, size=(n, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    X = X + 0.05 * rng.randn(n, 2)
    return X, y


class TestKernels:
    def test_squared_distances(self):
        X = np.array([[0.0, 0.0], [3.0, 4.0]])
        d = squared_distances(X, X)
        assert d[0, 1] == pytest.approx(25.0)
        assert d[0, 0] == 0.0

    def test_rbf_range_and_diagonal(self):
        X = np.random.RandomState(0).randn(10, 3)
        K = rbf_kernel(X, X, gamma=0.5)
        assert np.allclose(np.diag(K), 1.0)
        assert np.all(K > 0) and np.all(K <= 1.0)

    def test_rbf_with_precomputed_distances(self):
        X = np.random.RandomState(0).randn(6, 3)
        d = squared_distances(X, X)
        assert np.allclose(rbf_kernel(X, X, 0.3), rbf_kernel(X, X, 0.3, sq_dists=d))

    def test_linear_kernel(self):
        X = np.array([[1.0, 2.0]])
        Y = np.array([[3.0, 4.0]])
        assert linear_kernel(X, Y)[0, 0] == 11.0


class TestScaler:
    def test_standardizes(self):
        X = np.random.RandomState(0).randn(50, 4) * [1, 10, 100, 1000] + [5, 0, -3, 9]
        Xs = StandardScaler().fit_transform(X)
        assert np.allclose(Xs.mean(axis=0), 0.0, atol=1e-12)
        assert np.allclose(Xs.std(axis=0), 1.0, atol=1e-12)

    def test_constant_feature_handled(self):
        X = np.ones((10, 2))
        X[:, 1] = np.arange(10)
        Xs = StandardScaler().fit_transform(X)
        assert np.allclose(Xs[:, 0], 0.0)

    def test_transform_requires_fit(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones((2, 2)))


class TestSVC:
    def test_separable_blobs(self):
        X, y = blobs()
        model = SVC(C=10.0, gamma=0.5).fit(X, y)
        assert accuracy(y, model.predict(X)) > 0.97

    def test_xor_needs_rbf(self):
        X, y = xor_data()
        model = SVC(C=10.0, gamma=2.0).fit(X, y)
        assert accuracy(y, model.predict(X)) > 0.9

    def test_decision_function_sign_matches_predict(self):
        X, y = blobs(seed=3)
        model = SVC(C=1.0, gamma=0.5).fit(X, y)
        df = model.decision_function(X)
        assert np.array_equal((df > 0).astype(int), model.predict(X))

    def test_class_imbalance_with_balancing(self):
        X, y = blobs(n_per_class=100, separation=2.5, imbalance=0.08, seed=5)
        model = SVC(C=10.0, gamma=0.5, class_weight="balanced").fit(X, y)
        acc = class_accuracies(y, model.predict(X))
        # The rare class must not be sacrificed.
        assert acc[1] > 0.7
        assert acc[0] > 0.7

    def test_constant_labels_degenerate_fit(self):
        X = np.random.RandomState(0).randn(10, 2)
        model = SVC().fit(X, np.zeros(10, dtype=int))
        assert np.all(model.predict(X) == 0)

    def test_bad_labels_rejected(self):
        X = np.zeros((4, 2))
        with pytest.raises(ValueError):
            SVC().fit(X, np.array([0, 1, 2, 1]))

    def test_bad_hyperparameters_rejected(self):
        with pytest.raises(ValueError):
            SVC(C=0.0)
        with pytest.raises(ValueError):
            SVC(gamma=-1.0)

    def test_deterministic(self):
        X, y = blobs(seed=7)
        p1 = SVC(C=5.0, gamma=0.3).fit(X, y).predict(X)
        p2 = SVC(C=5.0, gamma=0.3).fit(X, y).predict(X)
        assert np.array_equal(p1, p2)

    def test_precomputed_distances_equivalent(self):
        X, y = blobs(seed=9)
        d = squared_distances(X, X)
        p1 = SVC(C=2.0, gamma=0.4).fit(X, y).predict(X)
        p2 = SVC(C=2.0, gamma=0.4).fit(X, y, sq_dists=d).predict(X)
        assert np.array_equal(p1, p2)

    def test_support_vectors_subset(self):
        X, y = blobs()
        model = SVC(C=10.0, gamma=0.5).fit(X, y)
        assert 0 < model.n_support_ <= len(X)


class TestTreeAndKnn:
    def test_tree_separable(self):
        X, y = blobs()
        model = DecisionTreeClassifier(max_depth=4).fit(X, y)
        assert accuracy(y, model.predict(X)) > 0.95

    def test_tree_xor(self):
        X, y = xor_data()
        model = DecisionTreeClassifier(max_depth=6).fit(X, y)
        assert accuracy(y, model.predict(X)) > 0.85

    def test_tree_depth_limits_complexity(self):
        X, y = xor_data()
        stump = DecisionTreeClassifier(max_depth=1).fit(X, y)
        deep = DecisionTreeClassifier(max_depth=8).fit(X, y)
        assert accuracy(y, deep.predict(X)) > accuracy(y, stump.predict(X))

    def test_knn(self):
        X, y = blobs()
        model = KNeighborsClassifier(k=3).fit(X, y)
        assert accuracy(y, model.predict(X)) > 0.95

    def test_knn_k_validation(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(k=0)


class TestMetrics:
    def test_fscore_eq1_perfect(self):
        y = np.array([0, 0, 1, 1])
        assert fscore_eq1(y, y) == 1.0

    def test_fscore_eq1_one_class_ignored(self):
        y_true = np.array([0, 0, 1, 1])
        y_pred = np.array([0, 0, 0, 0])  # class 1 fully missed
        assert fscore_eq1(y_true, y_pred) == 0.0

    def test_fscore_eq1_harmonic_mean(self):
        y_true = np.array([1, 1, 1, 1, 0, 0, 0, 0])
        y_pred = np.array([1, 1, 1, 1, 0, 0, 1, 1])  # acc1=1.0, acc2=0.5
        assert fscore_eq1(y_true, y_pred) == pytest.approx(2 * 1.0 * 0.5 / 1.5)

    def test_class_accuracies(self):
        y_true = np.array([1, 1, 0, 0])
        y_pred = np.array([1, 0, 0, 0])
        acc = class_accuracies(y_true, y_pred)
        assert acc[1] == 0.5 and acc[0] == 1.0


class TestCrossValidation:
    def test_stratified_folds_cover_all_indices(self):
        y = np.array([0] * 20 + [1] * 5)
        folds = stratified_kfold(y, k=5, seed=0)
        assert len(folds) == 5
        all_test = np.concatenate([test for _, test in folds])
        assert sorted(all_test) == list(range(25))

    def test_stratified_folds_keep_rare_class(self):
        y = np.array([0] * 20 + [1] * 5)
        for _, test in stratified_kfold(y, k=5, seed=0):
            assert np.any(y[test] == 1)

    def test_cross_val_fscore_reasonable(self):
        X, y = blobs(n_per_class=30)
        score = cross_val_fscore(lambda: SVC(C=10.0, gamma=0.5), X, y, k=5)
        assert score > 0.9

    def test_paper_grid_shape(self):
        grid = paper_grid(500)
        assert len(grid) == 500
        cs = {c for c, _ in grid}
        gammas = {g for _, g in grid}
        assert min(cs) == pytest.approx(1.0)
        assert max(cs) == pytest.approx(100000.0)
        assert min(gammas) == pytest.approx(1e-5)
        assert max(gammas) == pytest.approx(1.0)

    def test_grid_search_ranks_by_fscore(self):
        X, y = blobs(n_per_class=25, seed=2)
        gs = GridSearch(grid=paper_grid(12), k=3)
        configs = gs.search(X, y)
        assert len(configs) == 12
        scores = [c.fscore for c in configs]
        assert scores == sorted(scores, reverse=True)

    def test_top_configs(self):
        X, y = blobs(n_per_class=25, seed=2)
        top = GridSearch(grid=paper_grid(12), k=3).top_configs(X, y, n=5)
        assert len(top) == 5
        assert top[0].fscore >= top[-1].fscore
