"""Tests for the detect-and-recover runtime (repro.recover).

The contract under test: with recovery armed, a fired duplication check
rolls the run back to the most recent region snapshot and re-executes;
because the single transient fault does not replay, the re-execution
completes with outputs bit-identical to the fault-free baseline and the
trial classifies as CORRECTED.  When the escalation ladder refuses the
rollback (taint, pins, caps), the run degrades to the paper's fail-stop
DETECTED — never a harness crash.  Recovery is strictly opt-in: with
``recovery=None`` every byte of behavior matches the historical engine.
"""

import json

import pytest

from repro import compile_source
from repro.faults import Campaign, Outcome, OutcomeCounts, TrialRecord, parse_outcome
from repro.faults.parallel import _seal, verify_checkpoint
from repro.interp import Interpreter
from repro.interp.errors import DetectedByDuplication
from repro.ir.instructions import CallInst
from repro.ir.types import I64, VOID
from repro.ir.values import Constant
from repro.protect import FullDuplicationSelector, duplicate_instructions
from repro.recover import (
    RecoveryPolicy,
    RecoveryState,
    RecoveryTelemetry,
    Snapshot,
    build_plan,
    compute_regions,
)

KERNEL = """
int n = 12;
output double result[4];

double work(double a[], int n) {
    double s = 0.0;
    for (int i = 0; i < n; i = i + 1) {
        s = s + a[i] * a[i];
    }
    return sqrt(s);
}

void main() {
    double x[16];
    for (int i = 0; i < n; i = i + 1) { x[i] = (double)(i + 1); }
    result[0] = work(x, n);
    result[1] = (double)n;
}
"""


def protected_interpreter():
    module = compile_source(KERNEL, name="kernel")
    duplicate_instructions(module, FullDuplicationSelector().select(module))
    return Interpreter(module)


def make_campaign(recovery=None):
    return Campaign(protected_interpreter(), recovery=recovery)


def record_key(record):
    site = record.site
    rec = record.recovery
    return (
        site.instruction.opcode,
        site.occurrence,
        site.bit,
        record.outcome,
        record.status,
        record.cycles,
        rec.as_wire() if rec is not None else None,
    )


class TestRegionPlan:
    def test_duplication_pass_records_regions(self):
        module = compile_source(KERNEL, name="kernel")
        report = duplicate_instructions(
            module, FullDuplicationSelector().select(module)
        )
        assert report.regions
        assert module.recovery_regions == report.regions
        for fn_name, blocks in report.regions.items():
            fn = module.functions[fn_name]
            names = {b.name for b in fn.blocks}
            assert set(blocks) <= names
            assert fn.blocks[0].name in blocks  # entry is always a boundary

    def test_unprotected_module_has_no_regions(self):
        module = compile_source(KERNEL, name="kernel")
        assert compute_regions(module) == {}

    def test_build_plan_always_covers_run_entry(self):
        interp = Interpreter(compile_source(KERNEL, name="kernel"))
        plan = build_plan(interp.cm, "main")
        cfi = interp.cm.get_function_index("main")
        assert 0 in plan[cfi]


class TestCorrectedRuns:
    def test_detected_faults_become_corrected(self):
        baseline = make_campaign()
        baseline_result = baseline.run(30, seed=3)
        detected = baseline_result.counts.counts[Outcome.DETECTED]
        assert detected > 0

        campaign = make_campaign(recovery=RecoveryPolicy())
        result = campaign.run(30, seed=3)
        corrected = result.counts.counts[Outcome.CORRECTED]
        assert corrected == detected
        assert result.counts.counts[Outcome.DETECTED] == 0
        for record in result.records_with_outcome(Outcome.CORRECTED):
            assert record.status == "ok"
            assert record.recovery is not None
            assert record.recovery.rollbacks > 0

    def test_corrected_outputs_bit_identical_to_golden(self):
        campaign = make_campaign(recovery=RecoveryPolicy())
        campaign.prepare()
        golden = dict(campaign.golden_capture)
        site = next(
            s
            for s in campaign.sample_trials(30, seed=3)
            if campaign.run_site(s).outcome is Outcome.CORRECTED
        )
        campaign.run_site(site)
        for name, expected in golden.items():
            assert campaign.interp.read_global(name) == expected

    def test_fault_free_run_unchanged_by_recovery(self):
        plain = protected_interpreter().run()
        interp = protected_interpreter()
        recovered = interp.run(recovery=RecoveryPolicy())
        assert recovered.status == "ok"
        assert recovered.cycles == plain.cycles
        assert recovered.recovery is not None
        assert recovered.recovery.rollbacks == 0
        assert recovered.recovery.snapshots > 0

    def test_snapshot_cost_charges_cycles(self):
        free = protected_interpreter().run(recovery=RecoveryPolicy())
        priced = protected_interpreter().run(
            recovery=RecoveryPolicy(snapshot_cost=5)
        )
        assert priced.recovery.snapshots == free.recovery.snapshots
        assert priced.cycles == free.cycles + 5 * free.recovery.snapshots


class TestDeterminism:
    def test_parallel_matches_serial_with_recovery(self):
        a = make_campaign(recovery=RecoveryPolicy()).run(24, seed=5, n_jobs=1)
        b = make_campaign(recovery=RecoveryPolicy()).run(24, seed=5, n_jobs=2)
        assert [record_key(r) for r in a.records] == [
            record_key(r) for r in b.records
        ]

    def test_recovery_off_matches_historical_engine(self):
        a = make_campaign().run(24, seed=5)
        assert all(r.recovery is None for r in a.records)
        assert a.counts.counts[Outcome.CORRECTED] == 0
        assert "corrected" not in a.counts.as_dict()


class TestEscalation:
    def _module_with_failing_check(self):
        """A module whose inserted check compares 1 against 2: it fires on
        every execution, so no amount of rollback can satisfy it."""
        module = compile_source(KERNEL, name="kernel")
        duplicate_instructions(module, FullDuplicationSelector().select(module))
        fn = module.functions["main"]
        check_fn = module.declare_function(
            "ipas.check.i64",
            return_type=VOID,
            param_types=[I64, I64],
            is_intrinsic=True,
        )
        check = CallInst(check_fn, [Constant(I64, 1), Constant(I64, 2)])
        entry = fn.blocks[0]
        entry.insert_before(entry.terminator, check)
        return module

    def test_retry_exhaustion_degrades_to_detected(self):
        interp = Interpreter(self._module_with_failing_check())
        result = interp.run(
            recovery=RecoveryPolicy(max_rollbacks=3, region_retries=9)
        )
        assert result.status == "detected"
        assert "recovery escalated: rollback-cap" in result.error
        assert result.recovery.rollbacks == 3
        assert result.recovery.escalations > 0
        assert result.recovery.escalation_reason == "rollback-cap"

    def test_region_retries_escalate_first(self):
        interp = Interpreter(self._module_with_failing_check())
        result = interp.run(recovery=RecoveryPolicy(max_rollbacks=9))
        assert result.status == "detected"
        assert result.recovery.rollbacks == 2  # default region_retries
        assert result.recovery.escalation_reason == "region-retries"

    def test_failing_check_without_recovery_fail_stops(self):
        interp = Interpreter(self._module_with_failing_check())
        result = interp.run()
        assert result.status == "detected"
        assert "recovery" not in result.error

    def test_escalated_trial_classifies_detected_not_crash(self):
        campaign = Campaign(
            Interpreter(self._module_with_failing_check()),
            recovery=RecoveryPolicy(max_rollbacks=2),
        )
        with pytest.raises(RuntimeError, match="golden run failed"):
            campaign.prepare()  # even the golden run detects; no crash


class TestEscalationLadder:
    def _state(self, **kwargs):
        return RecoveryState(RecoveryPolicy(**kwargs), {0: frozenset({0})})

    def _snap(self, cycles=100):
        return Snapshot(0, 0, [], 0, cycles, [], 0, 0, False)

    def test_tainted_snapshot_refused(self):
        state = self._state()
        snap = Snapshot(0, 0, [], 0, 100, [], 0, 0, True)
        assert state.on_detection(snap, 200) == "tainted"
        assert state.telemetry.rollbacks == 0

    def test_pinned_snapshot_refused(self):
        state = self._state()
        snap = self._snap()
        state.stack.append(snap)
        state.pin()
        assert state.on_detection(snap, 200) == "pinned"

    def test_rollback_cap(self):
        state = self._state(max_rollbacks=1, region_retries=9)
        assert state.on_detection(self._snap(), 150) is None
        assert state.on_detection(self._snap(), 250) == "rollback-cap"

    def test_cycle_budget(self):
        state = self._state(rollback_cycle_budget=120, region_retries=9)
        assert state.on_detection(self._snap(100), 150) is None  # 50 spent
        assert state.on_detection(self._snap(100), 200) == "cycle-budget"

    def test_region_retries(self):
        state = self._state(region_retries=2)
        assert state.on_detection(self._snap(), 150) is None
        assert state.on_detection(self._snap(), 150) is None
        assert state.on_detection(self._snap(), 150) == "region-retries"
        assert state.telemetry.escalation_reason == "region-retries"

    def test_telemetry_accounting(self):
        state = self._state(region_retries=9, max_rollbacks=9)
        state.on_detection(self._snap(100), 160)
        state.on_detection(self._snap(100), 125)
        t = state.telemetry
        assert t.rollbacks == 2
        assert t.reexec_cycles == 85
        assert t.max_rollback_cycles == 60
        assert t.mean_rollback_cycles == 42.5


class TestDetectionContext:
    def test_check_failed_carries_site_details(self):
        interp = protected_interpreter()
        assert interp.cm.check_sites
        fn_name, block_name, check_name, value_name = interp.cm.check_sites[0]
        with pytest.raises(DetectedByDuplication) as exc_info:
            interp.check_failed(0)
        error = exc_info.value
        assert error.function == fn_name
        assert error.block == block_name
        assert error.check_name == check_name
        assert error.instruction == value_name
        assert fn_name in str(error)

    def test_detected_run_reports_context(self):
        campaign = make_campaign()
        campaign.prepare()
        site = next(
            s
            for s in campaign.sample_trials(30, seed=3)
            if campaign.run_site(s).outcome is Outcome.DETECTED
        )
        result = campaign.interp.run(
            injection=site.as_injection(), cycle_budget=campaign.cycle_budget
        )
        assert result.status == "detected"
        assert "ipas.check" in result.error

    def test_exception_defaults(self):
        error = DetectedByDuplication("boom")
        assert error.function == ""
        assert error.check_name == ""


class TestMpiRecovery:
    def test_job_level_corrections(self):
        from repro.faults import MpiCampaign
        from repro.workloads import get_workload

        workload = get_workload("is")
        module = workload.compile()
        duplicate_instructions(module, FullDuplicationSelector().select(module))
        campaign = MpiCampaign(
            workload.make_job(3, 1, module=module),
            verifier=workload.verifier(),
            budget_factor=workload.budget_factor,
            recovery=RecoveryPolicy(),
        )
        result = campaign.run(10, seed=5)
        corrected = result.counts.counts[Outcome.CORRECTED]
        assert corrected > 0
        for record in result.records:
            if record.outcome is Outcome.CORRECTED:
                assert record.recovery is not None
                assert record.recovery.rollbacks > 0


class TestSerialization:
    def test_outcome_counts_round_trip(self):
        counts = OutcomeCounts()
        for outcome in (Outcome.CRASH, Outcome.CORRECTED, Outcome.SOC):
            counts.record(outcome)
        restored = OutcomeCounts.from_counts_dict(counts.as_counts_dict())
        assert restored.counts == counts.counts

    def test_zero_corrected_elided(self):
        counts = OutcomeCounts()
        counts.record(Outcome.MASKED)
        data = counts.as_dict()
        assert "corrected" not in data and "trial_failure" not in data
        assert set(data) == {"crash", "hang", "detected", "masked", "soc"}

    def test_unknown_outcome_key_raises(self):
        with pytest.raises(ValueError, match="unknown outcome 'exotic'"):
            OutcomeCounts.from_counts_dict({"exotic": 1})

    def test_parse_outcome_names_context(self):
        with pytest.raises(ValueError, match="ckpt.jsonl:7"):
            parse_outcome("exotic", "checkpoint ckpt.jsonl:7")

    def test_trial_record_round_trips_recovery(self):
        campaign = make_campaign(recovery=RecoveryPolicy())
        campaign.prepare()
        record = next(
            campaign.run_site(s)
            for s in campaign.sample_trials(30, seed=3)
            if campaign.run_site(s).outcome is Outcome.CORRECTED
        )
        data = record.to_dict()
        restored = TrialRecord.from_dict(data, campaign.interp.module)
        assert restored.outcome is Outcome.CORRECTED
        assert restored.recovery is not None
        assert restored.recovery.as_dict() == record.recovery.as_dict()

    def test_trial_record_unknown_outcome_raises(self):
        campaign = make_campaign()
        campaign.prepare()
        record = campaign.run_site(campaign.sample_trials(1, seed=3)[0])
        data = record.to_dict()
        data["outcome"] = "exotic"
        with pytest.raises(ValueError, match="unknown outcome 'exotic'"):
            TrialRecord.from_dict(data, campaign.interp.module)

    def test_telemetry_wire_round_trip(self):
        t = RecoveryTelemetry(3, 2, 500, 300, 1, "tainted")
        assert RecoveryTelemetry.from_wire(t.as_wire()).as_dict() == t.as_dict()


class TestCheckpointForwardCompat:
    def _write_checkpoint(self, tmp_path, recovery=None):
        path = str(tmp_path / "ckpt.jsonl")
        campaign = make_campaign(recovery=recovery)
        campaign.run(8, seed=5, checkpoint_path=path)
        return path

    def _corrupt_outcome(self, path, value="exotic"):
        lines = open(path).read().splitlines()
        entry = json.loads(lines[1])
        del entry["crc"]
        entry["outcome"] = value
        lines[1] = json.dumps(_seal(entry))
        with open(path, "w") as fh:
            fh.write("\n".join(lines) + "\n")

    def test_unknown_outcome_line_named_in_error(self, tmp_path):
        path = self._write_checkpoint(tmp_path)
        self._corrupt_outcome(path)
        campaign = make_campaign()
        with pytest.raises(ValueError, match=r"ckpt\.jsonl:2"):
            campaign.run(8, seed=5, checkpoint_path=path)

    def test_verify_checkpoint_reports_unknown_outcomes(self, tmp_path):
        path = self._write_checkpoint(tmp_path)
        self._corrupt_outcome(path)
        report = verify_checkpoint(path, n_trials=8)
        assert report["unknown_outcomes"] == [{"line": 2, "outcome": "exotic"}]
        assert report["recoverable"] == 7

    def test_resume_restores_recovery_telemetry(self, tmp_path):
        path = self._write_checkpoint(tmp_path, recovery=RecoveryPolicy())
        campaign = make_campaign(recovery=RecoveryPolicy())
        result = campaign.run(8, seed=5, checkpoint_path=path)
        assert result.stats.resumed == 8
        reference = make_campaign(recovery=RecoveryPolicy()).run(8, seed=5)
        assert [record_key(r) for r in result.records] == [
            record_key(r) for r in reference.records
        ]

    def test_recovery_changes_fingerprint(self, tmp_path):
        path = self._write_checkpoint(tmp_path)  # written without recovery
        campaign = make_campaign(recovery=RecoveryPolicy())
        with pytest.warns(Warning, match="fingerprint mismatch"):
            result = campaign.run(8, seed=5, checkpoint_path=path)
        assert result.stats.resumed == 0
