"""Tests for the experiment drivers (cache, full evaluation, fig8/fig9,
ablations) at a tiny scale."""

import pytest

from repro.core import ExperimentScale
from repro.experiments import (
    best_by_ideal_point,
    cache,
    clear_memos,
    format_table,
    outcome_row,
    percent,
    run_classifier_ablation,
    run_full_evaluation,
    run_input_variation,
    run_scalability,
)

TINY = ExperimentScale(train_samples=100, grid_configs=6, eval_trials=32, top_n=2)


@pytest.fixture(autouse=True)
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("IPAS_CACHE_DIR", str(tmp_path))
    clear_memos()
    yield


@pytest.fixture(scope="module")
def full_result():
    # One shared computation (module scope); cache is per-test isolated so
    # compute directly with use_cache=False.
    return run_full_evaluation("is", TINY, seed=0, use_cache=False)


class TestCache:
    def test_round_trip(self):
        cache.store("probe", {"x": 1})
        assert cache.load("probe") == {"x": 1}

    def test_miss(self):
        assert cache.load("never-written") is None

    def test_cached_helper_computes_once(self):
        calls = []

        def compute():
            calls.append(1)
            return {"v": 7}

        assert cache.cached("k", compute) == {"v": 7}
        assert cache.cached("k", compute) == {"v": 7}
        assert len(calls) == 1

    def test_no_cache_env(self, monkeypatch):
        cache.store("k2", {"v": 1})
        monkeypatch.setenv("IPAS_NO_CACHE", "1")
        assert cache.load("k2") is None


class TestFullEvaluation:
    def test_result_structure(self, full_result):
        r = full_result
        assert r["workload"] == "is"
        assert set(r["unprotected"]["counts"]) == {
            "crash", "hang", "detected", "masked", "soc",
        }
        assert len(r["ipas"]) == TINY.top_n
        assert len(r["baseline"]) == TINY.top_n
        assert r["static_instructions"] > 0
        assert r["ipas_training_seconds"] > 0

    def test_paper_shape_full_dup_detects_most(self, full_result):
        full = full_result["full"]
        assert full["counts"]["detected"] > 0.3
        assert full["slowdown"] > full_result["unprotected"]["slowdown"]

    def test_paper_shape_ipas_cheaper_than_baseline(self, full_result):
        # Fig. 7 / Table 4: IPAS duplicates less and costs less.
        ipas_dup = min(e["duplicated_fraction"] for e in full_result["ipas"])
        base_dup = min(e["duplicated_fraction"] for e in full_result["baseline"])
        assert ipas_dup < base_dup
        ipas_best = best_by_ideal_point(full_result["ipas"])
        base_best = best_by_ideal_point(full_result["baseline"])
        assert ipas_best["slowdown"] < base_best["slowdown"] + 0.25

    def test_caching(self):
        r1 = run_full_evaluation("is", TINY, seed=1, use_cache=True)
        r2 = run_full_evaluation("is", TINY, seed=1, use_cache=True)
        assert r1 == r2  # second call is a cache hit with identical payload

    def test_best_by_ideal_point(self):
        # Reduction is in percentage points, so it dominates unless equal —
        # with equal reductions the lower slowdown wins.
        entries = [
            {"slowdown": 1.5, "soc_reduction": 95.0, "label": "a"},
            {"slowdown": 1.1, "soc_reduction": 95.0, "label": "b"},
        ]
        assert best_by_ideal_point(entries)["label"] == "b"


class TestScalability:
    def test_slowdown_roughly_flat(self):
        result = run_scalability("is", ranks=(1, 2), scale=TINY, use_cache=False)
        points = result["points"]
        assert [p["ranks"] for p in points] == [1, 2]
        slowdowns = [p["slowdown"] for p in points]
        assert all(s > 1.0 for s in slowdowns)
        # Fig. 8: roughly constant with scale.
        assert abs(slowdowns[0] - slowdowns[1]) < 0.3


class TestInputVariation:
    def test_transfer_across_inputs(self):
        result = run_input_variation(
            "is", input_ids=(1, 2), scale=TINY, use_cache=False
        )
        assert len(result["points"]) == 2
        for point in result["points"]:
            assert point["unprotected_soc"] >= 0.0
            assert point["slowdown"] > 1.0


class TestAblations:
    def test_classifier_ablation(self):
        result = run_classifier_ablation("is", TINY, use_cache=False)
        assert set(result["scores"]) == {"svm", "decision_tree", "knn"}
        for score in result["scores"].values():
            assert 0.0 <= score <= 1.0


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.0], ["bb", 22.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0] and "---" in lines[1]

    def test_percent(self):
        assert percent(0.1234) == "12.3%"

    def test_outcome_row(self):
        row = outcome_row({"crash": 0.1, "hang": 0.05, "detected": 0.2,
                           "masked": 0.5, "soc": 0.15})
        assert row == ["15.0%", "20.0%", "50.0%", "15.0%"]


class TestCrossWorkload:
    def test_cross_training_protects_something_or_nothing_gracefully(self):
        from repro.experiments import run_cross_workload

        result = run_cross_workload("is", "is", TINY, use_cache=False)
        assert result["train"] == result["test"] == "is"
        assert 0.0 <= result["duplicated_fraction"] <= 1.0
        assert result["slowdown"] >= 1.0

    def test_cross_pair_runs(self):
        from repro.experiments import run_cross_workload

        result = run_cross_workload("is", "hpccg", TINY, use_cache=False)
        assert result["train"] == "is" and result["test"] == "hpccg"
        # A foreign classifier may protect little, but never negatively.
        assert result["slowdown"] >= 1.0
