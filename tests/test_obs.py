"""Tests for the observability layer (repro.obs).

The contract under test: metrics merge deterministically (jobs 1 vs N vs
MPI ranks, warm-start on/off), traces parse and nest, heatmaps join the
coverage prover's verdicts, the block profiler never perturbs simulated
state, and — above all — a campaign run with observability attached is
bit-identical to one without.
"""

import json

import pytest

from repro import compile_source
from repro.faults import Campaign, MpiCampaign, campaign_fingerprint
from repro.interp import Interpreter
from repro.obs import (
    BlockProfiler,
    MetricsRegistry,
    Observation,
    TraceWriter,
    build_heatmap,
    hot_block_report,
    render_heatmap_text,
    render_metrics_text,
    validate_trace,
)

KERNEL = """
int n = 12;
output double result[4];

double work(double a[], int n) {
    double s = 0.0;
    for (int i = 0; i < n; i = i + 1) {
        s = s + a[i] * a[i];
    }
    return sqrt(s);
}

void main() {
    double x[16];
    for (int i = 0; i < n; i = i + 1) { x[i] = (double)(i + 1); }
    result[0] = work(x, n);
    result[1] = (double)n;
}
"""


def make_campaign(**kwargs):
    return Campaign(Interpreter(compile_source(KERNEL, name="kernel")), **kwargs)


def record_key(record):
    site = record.site
    return (
        site.instruction.opcode,
        site.occurrence,
        site.bit,
        record.outcome,
        record.status,
        record.cycles,
    )


class TestRegistry:
    def test_undeclared_name_raises(self):
        registry = MetricsRegistry()
        with pytest.raises(KeyError):
            registry.counter("ipas_totally_made_up_total")

    def test_counter_and_labels(self):
        registry = MetricsRegistry()
        registry.counter("ipas_trials_total", outcome="soc").inc()
        registry.counter("ipas_trials_total", outcome="soc").inc(2)
        registry.counter("ipas_trials_total", outcome="crash").inc()
        assert registry.counter("ipas_trials_total", outcome="soc").value == 3
        assert registry.counter("ipas_trials_total", outcome="crash").value == 1

    def test_histogram_buckets_and_mean(self):
        registry = MetricsRegistry()
        hist = registry.histogram("ipas_trial_latency_ms", outcome="masked")
        for value in (0.3, 1.5, 1.6, 40.0, 99999.0):
            hist.observe(value)
        assert hist.count == 5
        assert hist.counts[0] == 1  # <= 0.5
        assert hist.counts[-1] == 1  # overflow
        assert hist.mean == pytest.approx(sum((0.3, 1.5, 1.6, 40.0, 99999.0)) / 5)

    def test_merge_is_grouping_independent(self):
        """Summing shards in any grouping yields bit-identical totals."""

        def shard(values):
            registry = MetricsRegistry()
            for v in values:
                registry.counter("ipas_trials_total", outcome="soc").inc()
                registry.histogram("ipas_trial_cycles", outcome="soc").observe(v)
            return registry

        values = [120, 450, 80_000, 120, 3_000_000, 7]
        left = shard(values[:2])
        left.merge(shard(values[2:]))
        right = MetricsRegistry()
        for v in values:
            right.counter("ipas_trials_total", outcome="soc").inc()
            right.histogram("ipas_trial_cycles", outcome="soc").observe(v)
        assert left.as_dict() == right.as_dict()

    def test_gauge_max_merge(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.gauge("ipas_trial_latency_seconds_max", outcome="soc").observe_max(0.5)
        b.gauge("ipas_trial_latency_seconds_max", outcome="soc").observe_max(2.5)
        a.merge(b)
        assert a.gauge("ipas_trial_latency_seconds_max", outcome="soc").value == 2.5

    def test_round_trip_and_unknown_names_skipped(self):
        registry = MetricsRegistry()
        registry.counter("ipas_recovery_rollbacks_total").inc(4)
        data = registry.as_dict()
        data["ipas_from_the_future_total"] = {
            "type": "counter", "help": "", "unit": "", "wall": False,
            "samples": [{"labels": {}, "value": 1}],
        }
        restored = MetricsRegistry.from_dict(data)
        assert restored.counter("ipas_recovery_rollbacks_total").value == 4
        assert "ipas_from_the_future_total" not in restored.as_dict()

    def test_deterministic_snapshot_excludes_wall_and_harness(self):
        registry = MetricsRegistry()
        registry.counter("ipas_trials_total", outcome="soc").inc()
        registry.counter("ipas_worker_deaths_total").inc()  # harness event
        registry.counter("ipas_worker_busy_seconds_total").value += 1.5  # wall
        snapshot = registry.deterministic_snapshot()
        assert "ipas_trials_total" in snapshot
        assert "ipas_worker_deaths_total" not in snapshot
        assert "ipas_worker_busy_seconds_total" not in snapshot

    def test_render_metrics_text(self):
        registry = MetricsRegistry()
        registry.counter("ipas_trials_total", outcome="soc").inc(3)
        text = render_metrics_text(registry.as_dict())
        assert '# TYPE ipas_trials_total counter' in text
        assert 'ipas_trials_total{outcome="soc"} 3' in text


class TestCampaignMergeDeterminism:
    """Satellite: aggregation identical at jobs 1 vs 2 vs MPI ranks, warm on/off."""

    def snapshot(self, **kwargs):
        result = make_campaign(
            warm_start=kwargs.pop("warm_start", False)
        ).run(24, seed=7, **kwargs)
        return result, result.stats.registry.deterministic_snapshot()

    def test_jobs_1_vs_2(self):
        r1, d1 = self.snapshot(n_jobs=1)
        r2, d2 = self.snapshot(n_jobs=2)
        assert d1 == d2
        assert [record_key(r) for r in r1.records] == [
            record_key(r) for r in r2.records
        ]

    def test_warm_start_on_off(self):
        _, cold = self.snapshot(n_jobs=2)
        _, warm = self.snapshot(n_jobs=2, warm_start=True)
        # The warm engine adds its own ledger counters; the trial-level
        # metrics (outcomes, cycles) must be bit-identical to a cold run.
        warm_trials = {k: v for k, v in warm.items() if not k.startswith("ipas_warm")}
        assert warm_trials == cold
        assert warm["ipas_warm_restores_total"]["samples"][0]["value"] == 24

    def test_mpi_ranks_jobs_1_vs_2(self):
        from repro.workloads import get_workload

        workload = get_workload("is")
        snapshots = []
        for n_jobs in (1, 2):
            job = workload.make_job(2, 1)
            campaign = MpiCampaign(
                job, verifier=workload.verifier(),
                budget_factor=workload.budget_factor,
            )
            obs = Observation()
            result = campaign.run(10, seed=3, n_jobs=n_jobs, obs=obs)
            assert result.stats.registry is obs.registry
            snapshots.append(obs.registry.deterministic_snapshot())
        assert snapshots[0] == snapshots[1]


class TestTrace:
    def test_traced_campaign_validates(self, tmp_path):
        path = str(tmp_path / "trace.json")
        obs = Observation(trace_path=path)
        make_campaign().run(12, seed=1, n_jobs=2, obs=obs)
        report = validate_trace(path)
        assert report["ok"], report["errors"]
        assert report["phases"].get("X", 0) >= 12  # trials + campaign phases
        assert report["lanes"] >= 2  # campaign lane + at least one worker
        # strict JSON parsers work too: the array is properly terminated
        events = json.loads((tmp_path / "trace.json").read_text())
        assert any(e.get("name") == "sample-trials" for e in events if e)

    def test_unterminated_trace_still_validates(self, tmp_path):
        path = str(tmp_path / "crash.json")
        writer = TraceWriter(path)
        writer.complete("prepare", "phase", 0, 0, 0.0, 0.5)
        writer._fh.flush()  # simulate a crash: no close(), no "]"
        report = validate_trace(path)
        assert report["ok"], report["errors"]
        assert report["phases"]["X"] == 1

    def test_overlapping_spans_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        lines = ["["]
        for ts in (0, 50):  # [0,100) and [50,150) partially overlap
            lines.append(json.dumps(
                {"ph": "X", "pid": 1, "tid": 0, "ts": ts, "dur": 100, "name": "t"}
            ) + ",")
        path.write_text("\n".join(lines) + "\n")
        report = validate_trace(str(path))
        assert not report["ok"]
        assert any("overlaps" in e for e in report["errors"])

    def test_resume_appends_on_one_time_axis(self, tmp_path):
        path = str(tmp_path / "multi.json")
        obs = Observation(trace_path=path)
        make_campaign().run(6, seed=1, obs=obs)
        first = validate_trace(path)["events"]
        make_campaign().run(6, seed=2, obs=obs)  # reuses the Observation
        report = validate_trace(path)
        assert report["ok"], report["errors"]
        assert report["events"] > first


class TestHeatmap:
    def test_join_with_coverage_verdicts(self):
        campaign = make_campaign()
        result = campaign.run(40, seed=3)
        heatmap = build_heatmap(result.records, campaign.interp.module)
        assert heatmap["kind"] == "ipas-heatmap"
        assert heatmap["trials"] == 40
        assert heatmap["sites"]
        for site in heatmap["sites"]:
            assert site["static_verdict"] in ("detected", "masked", "escapes", None)
            assert sum(site["outcomes"].values()) == site["trials"]
        # unprotected module: the prover can never promise detection
        assert all(s["static_verdict"] != "detected" for s in heatmap["sites"])
        assert sum(s["trials"] for s in heatmap["sites"]) == 40

    def test_render_text(self):
        campaign = make_campaign()
        result = campaign.run(20, seed=3)
        heatmap = build_heatmap(result.records, campaign.interp.module)
        text = render_heatmap_text(heatmap)
        assert "fault-site heatmap" in text
        assert "static" in text


class TestBlockProfiler:
    def test_profile_matches_interpreter_and_preserves_state(self):
        interp = Interpreter(compile_source(KERNEL, name="kernel"))
        golden = interp.run(profile=True)
        profiled = Interpreter(compile_source(KERNEL, name="kernel"))
        with BlockProfiler(profiled.cm) as prof:
            result = profiled.run()
        assert result.cycles == golden.cycles
        assert prof.hits == list(golden.profile)
        report = prof.report(top=5)
        assert report["blocks"]
        assert report["total_cycles"] == sum(
            h * cb.cost
            for cf in profiled.cm.cfuncs
            for cb, h in zip(cf.blocks, (prof.hits[b.gid] for b in cf.blocks))
        )

    def test_block_fns_restored_and_rearm_guard(self):
        interp = Interpreter(compile_source(KERNEL, name="kernel"))
        originals = [list(cf.block_fns) for cf in interp.cm.cfuncs]
        profiler = BlockProfiler(interp.cm)
        with profiler:
            with pytest.raises(RuntimeError):
                with BlockProfiler(interp.cm):
                    pass
        for cf, fns in zip(interp.cm.cfuncs, originals):
            assert cf.block_fns == fns

    def test_report_from_run_profile(self):
        interp = Interpreter(compile_source(KERNEL, name="kernel"))
        result = interp.run(profile=True)
        report = hot_block_report(interp.cm, list(result.profile))
        assert report["blocks"][0]["cycles"] >= report["blocks"][-1]["cycles"]


class TestCheckpointStatsPersistence:
    def test_resumed_campaign_reports_cumulative_telemetry(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")

        class Abort(Exception):
            pass

        def bomb(index, record, remaining=[8]):
            remaining[0] -= 1
            if remaining[0] == 0:
                raise Abort

        with pytest.raises(Abort):
            make_campaign().run(20, seed=3, checkpoint_path=path, on_trial=bomb)
        header = json.loads(open(path).readline())
        assert "stats" in header  # metrics snapshot persisted on flush

        resumed = make_campaign().run(20, seed=3, checkpoint_path=path)
        stats = resumed.stats
        # progress accounting stays restart-local ...
        assert stats.resumed == 8
        assert stats.completed == 12
        # ... while outcome telemetry is cumulative across both runs
        assert sum(stats.outcome_counts.values()) == 20

    def test_pre_stats_checkpoint_still_resumes(self, tmp_path):
        """A v2 header without the stats key (older writer) resumes fine."""
        path = str(tmp_path / "ckpt.jsonl")

        class Abort(Exception):
            pass

        def bomb(index, record, remaining=[5]):
            remaining[0] -= 1
            if remaining[0] == 0:
                raise Abort

        with pytest.raises(Abort):
            make_campaign().run(20, seed=3, checkpoint_path=path, on_trial=bomb)
        # strip the stats key, as a pre-observability writer would have
        lines = open(path).read().splitlines()
        header = json.loads(lines[0])
        header.pop("stats")
        header.pop("crc")
        from repro.faults.parallel import _seal

        lines[0] = json.dumps(_seal(header))
        with open(path, "w") as fh:
            fh.write("\n".join(lines) + "\n")

        resumed = make_campaign().run(20, seed=3, checkpoint_path=path)
        assert resumed.stats.resumed == 5
        assert resumed.stats.completed == 15
        assert sum(resumed.stats.outcome_counts.values()) == 15


class TestBitIdentity:
    """Observability must never perturb outcomes or fingerprints."""

    def test_outcomes_identical_with_obs_on_and_off(self, tmp_path):
        plain = make_campaign().run(24, seed=7, n_jobs=2)
        obs = Observation(
            trace_path=str(tmp_path / "t.json"),
            metrics_path=str(tmp_path / "m.json"),
        )
        traced = make_campaign().run(24, seed=7, n_jobs=2, obs=obs)
        assert [record_key(r) for r in plain.records] == [
            record_key(r) for r in traced.records
        ]
        assert plain.counts.as_dict() == traced.counts.as_dict()

    def test_fingerprint_independent_of_obs(self):
        a = make_campaign()
        b = make_campaign()
        b.run(4, seed=1, obs=Observation())
        assert campaign_fingerprint(a, 10, 3) == campaign_fingerprint(b, 10, 3)

    def test_stats_surface_unchanged(self):
        """The legacy CampaignStats attribute API stays intact on top of
        the registry (the supervisor pokes these via setattr)."""
        result = make_campaign().run(8, seed=1)
        stats = result.stats
        stats.worker_deaths += 2
        stats.retries += 1
        assert stats.worker_deaths == 2
        assert stats.harness_events
        assert stats.registry.counter("ipas_worker_deaths_total").value == 2
        assert isinstance(stats.as_dict(), dict)


class TestObservationArtifacts:
    def test_metrics_json_written_on_close(self, tmp_path):
        path = tmp_path / "metrics.json"
        obs = Observation(metrics_path=str(path))
        make_campaign().run(6, seed=1, obs=obs)
        payload = json.loads(path.read_text())
        assert payload["kind"] == "ipas-metrics"
        totals = payload["metrics"]["ipas_trials_total"]["samples"]
        assert sum(s["value"] for s in totals) == 6
