"""Tests for the compiled IR interpreter: semantics, traps, profiling,
cycle accounting, and single-bit fault injection."""

import math

import pytest

from repro.ir import (
    ArrayType,
    F64,
    I1,
    I32,
    I64,
    IRBuilder,
    Module,
    VOID,
    const_bool,
    const_float,
    const_int,
    declare_intrinsic,
    verify_module,
)
from repro.interp import CostModel, Interpreter, RunResult, run_module


def build_module(builder_fn, name="t"):
    m = Module(name)
    builder_fn(m)
    verify_module(m)
    return m


def run_main(builder_fn, **kwargs):
    m = build_module(builder_fn)
    result, interp = run_module(m, **kwargs)
    return result, interp


class TestArithmetic:
    def make_binop_main(self, m, opcode, a, b, type_=I64):
        fn = m.add_function("main", type_, [])
        bld = IRBuilder(fn.add_block("entry"))
        ca = const_int(a, type_) if type_.is_integer() else const_float(a)
        cb = const_int(b, type_) if type_.is_integer() else const_float(b)
        # Route one operand through an identity call so constant folding
        # concerns never apply: interpreter executes the op dynamically.
        v = bld.binop(opcode, ca, cb)
        bld.ret(v)

    @pytest.mark.parametrize(
        "opcode,a,b,expected",
        [
            ("add", 7, 5, 12),
            ("sub", 7, 9, -2),
            ("mul", -3, 4, -12),
            ("sdiv", 7, 2, 3),
            ("sdiv", -7, 2, -3),
            ("srem", 7, 3, 1),
            ("srem", -7, 3, -1),
            ("and", 12, 10, 8),
            ("or", 12, 10, 14),
            ("xor", 12, 10, 6),
            ("shl", 3, 4, 48),
            ("lshr", -1, 60, 15),
            ("ashr", -16, 2, -4),
        ],
    )
    def test_int_ops(self, opcode, a, b, expected):
        result, _ = run_main(lambda m: self.make_binop_main(m, opcode, a, b))
        assert result.status == "ok"
        assert result.value == expected

    def test_add_wraps_at_64_bits(self):
        result, _ = run_main(
            lambda m: self.make_binop_main(m, "add", 2**63 - 1, 1)
        )
        assert result.value == -(2**63)

    def test_mul_wraps(self):
        result, _ = run_main(lambda m: self.make_binop_main(m, "mul", 2**62, 4))
        assert result.value == 0

    def test_i32_wraps_at_32_bits(self):
        result, _ = run_main(
            lambda m: self.make_binop_main(m, "add", 2**31 - 1, 1, I32)
        )
        assert result.value == -(2**31)

    @pytest.mark.parametrize(
        "opcode,a,b,expected",
        [
            ("fadd", 1.5, 2.25, 3.75),
            ("fsub", 1.0, 0.75, 0.25),
            ("fmul", 3.0, -2.0, -6.0),
            ("fdiv", 1.0, 8.0, 0.125),
        ],
    )
    def test_float_ops(self, opcode, a, b, expected):
        result, _ = run_main(lambda m: self.make_binop_main(m, opcode, a, b, F64))
        assert result.value == expected

    def test_fdiv_by_zero_gives_inf_not_trap(self):
        result, _ = run_main(lambda m: self.make_binop_main(m, "fdiv", 1.0, 0.0, F64))
        assert result.status == "ok"
        assert result.value == math.inf

    def test_sdiv_by_zero_traps(self):
        result, _ = run_main(lambda m: self.make_binop_main(m, "sdiv", 1, 0))
        assert result.status == "trap"
        assert "division" in result.error

    def test_srem_by_zero_traps(self):
        result, _ = run_main(lambda m: self.make_binop_main(m, "srem", 1, 0))
        assert result.status == "trap"


class TestComparisonsAndSelect:
    def test_icmp_and_select(self):
        def build(m):
            fn = m.add_function("main", I64, [])
            b = IRBuilder(fn.add_block("entry"))
            c = b.icmp("sgt", const_int(5), const_int(3))
            v = b.select(c, const_int(111), const_int(222))
            b.ret(v)

        result, _ = run_main(build)
        assert result.value == 111

    def test_fcmp_nan_is_unordered(self):
        def build(m):
            fn = m.add_function("main", I64, [])
            b = IRBuilder(fn.add_block("entry"))
            nan = b.fdiv(const_float(0.0), const_float(0.0))
            c = b.fcmp("oeq", nan, nan)
            v = b.select(c, const_int(1), const_int(0))
            b.ret(v)

        result, _ = run_main(build)
        assert result.value == 0

    def test_fcmp_one_false_on_nan(self):
        def build(m):
            fn = m.add_function("main", I64, [])
            b = IRBuilder(fn.add_block("entry"))
            nan = b.fdiv(const_float(0.0), const_float(0.0))
            c = b.fcmp("one", nan, const_float(1.0))
            v = b.select(c, const_int(1), const_int(0))
            b.ret(v)

        result, _ = run_main(build)
        assert result.value == 0


class TestCasts:
    def test_sitofp_fptosi_roundtrip(self):
        def build(m):
            fn = m.add_function("main", I64, [])
            b = IRBuilder(fn.add_block("entry"))
            f = b.sitofp(const_int(-42))
            half = b.fmul(f, const_float(0.5))
            i = b.fptosi(half)
            b.ret(i)

        result, _ = run_main(build)
        assert result.value == -21  # C truncation toward zero

    def test_fptosi_of_nan_traps(self):
        def build(m):
            fn = m.add_function("main", I64, [])
            b = IRBuilder(fn.add_block("entry"))
            nan = b.fdiv(const_float(0.0), const_float(0.0))
            i = b.fptosi(nan)
            b.ret(i)

        result, _ = run_main(build)
        assert result.status == "trap"

    def test_zext_i1(self):
        def build(m):
            fn = m.add_function("main", I64, [])
            b = IRBuilder(fn.add_block("entry"))
            c = b.icmp("eq", const_int(1), const_int(1))
            v = b.zext(c, I64)
            b.ret(v)

        result, _ = run_main(build)
        assert result.value == 1

    def test_trunc_then_sext(self):
        def build(m):
            fn = m.add_function("main", I64, [])
            b = IRBuilder(fn.add_block("entry"))
            t = b.trunc(const_int(0x1FF), I32)
            v = b.sext(t, I64)
            b.ret(v)

        result, _ = run_main(build)
        assert result.value == 0x1FF

    def test_bitcast_i64_f64_roundtrip(self):
        def build(m):
            fn = m.add_function("main", F64, [])
            b = IRBuilder(fn.add_block("entry"))
            i = b.cast("bitcast", const_float(2.5), I64)
            f = b.cast("bitcast", i, F64)
            b.ret(f)

        result, _ = run_main(build)
        assert result.value == 2.5


class TestControlFlowAndLoops:
    def test_loop_sum(self):
        """sum(0..n-1) with an SSA loop."""

        def build(m):
            fn = m.add_function("main", I64, [])
            entry = fn.add_block("entry")
            header = fn.add_block("header")
            body = fn.add_block("body")
            exit_ = fn.add_block("exit")
            IRBuilder(entry).br(header)
            bh = IRBuilder(header)
            i = bh.phi(I64, "i")
            acc = bh.phi(I64, "acc")
            cond = bh.icmp("slt", i, const_int(10))
            bh.cond_br(cond, body, exit_)
            bb = IRBuilder(body)
            acc2 = bb.add(acc, i)
            i2 = bb.add(i, const_int(1))
            bb.br(header)
            i.add_incoming(const_int(0), entry)
            i.add_incoming(i2, body)
            acc.add_incoming(const_int(0), entry)
            acc.add_incoming(acc2, body)
            IRBuilder(exit_).ret(acc)

        result, _ = run_main(build)
        assert result.value == 45

    def test_phi_parallel_swap(self):
        """Two phis that swap values each iteration (parallel-copy check)."""

        def build(m):
            fn = m.add_function("main", I64, [])
            entry = fn.add_block("entry")
            header = fn.add_block("header")
            body = fn.add_block("body")
            exit_ = fn.add_block("exit")
            IRBuilder(entry).br(header)
            bh = IRBuilder(header)
            a = bh.phi(I64, "a")
            b2 = bh.phi(I64, "b")
            i = bh.phi(I64, "i")
            cond = bh.icmp("slt", i, const_int(3))
            bh.cond_br(cond, body, exit_)
            bb = IRBuilder(body)
            i2 = bb.add(i, const_int(1))
            bb.br(header)
            a.add_incoming(const_int(1), entry)
            a.add_incoming(b2, body)  # a <- b
            b2.add_incoming(const_int(2), entry)
            b2.add_incoming(a, body)  # b <- a (must read pre-update a)
            i.add_incoming(const_int(0), entry)
            i.add_incoming(i2, body)
            be = IRBuilder(exit_)
            packed = be.mul(a, const_int(10))
            packed = be.add(packed, b2)
            be.ret(packed)

        # After 3 swaps: (a,b) = (2,1); packed = 21.
        result, _ = run_main(build)
        assert result.value == 21

    def test_unreachable_traps(self):
        def build(m):
            fn = m.add_function("main", VOID, [])
            b = IRBuilder(fn.add_block("entry"))
            b.unreachable()

        result, _ = run_main(build)
        assert result.status == "trap"
        assert "unreachable" in result.error


class TestMemory:
    def test_global_array_store_load(self):
        def build(m):
            g = m.add_global("data", ArrayType(I64, 4))
            fn = m.add_function("main", I64, [])
            b = IRBuilder(fn.add_block("entry"))
            p2 = b.gep(g, const_int(2))
            b.store(const_int(99), p2)
            v = b.load(p2)
            b.ret(v)

        result, interp = run_main(build)
        assert result.value == 99
        assert interp.read_global("data") == [0, 0, 99, 0]

    def test_global_initializer(self):
        def build(m):
            g = m.add_global("data", ArrayType(F64, 3), [1.5, 2.5, 3.5])
            fn = m.add_function("main", F64, [])
            b = IRBuilder(fn.add_block("entry"))
            p = b.gep(g, const_int(1))
            b.ret(b.load(p))

        result, _ = run_main(build)
        assert result.value == 2.5

    def test_out_of_bounds_gep_traps(self):
        def build(m):
            g = m.add_global("data", ArrayType(I64, 4))
            fn = m.add_function("main", I64, [])
            b = IRBuilder(fn.add_block("entry"))
            p = b.gep(g, const_int(5))  # lands in the guard zone
            b.ret(b.load(p))

        result, _ = run_main(build)
        assert result.status == "trap"
        assert "address" in result.error

    def test_negative_address_traps(self):
        def build(m):
            g = m.add_global("data", ArrayType(I64, 4))
            fn = m.add_function("main", I64, [])
            b = IRBuilder(fn.add_block("entry"))
            p = b.gep(g, const_int(-100))
            b.ret(b.load(p))

        result, _ = run_main(build)
        assert result.status == "trap"

    def test_wild_address_traps(self):
        def build(m):
            g = m.add_global("data", ArrayType(I64, 4))
            fn = m.add_function("main", I64, [])
            b = IRBuilder(fn.add_block("entry"))
            p = b.gep(g, const_int(1 << 40))
            b.ret(b.load(p))

        result, _ = run_main(build)
        assert result.status == "trap"

    def test_alloca_array(self):
        def build(m):
            fn = m.add_function("main", I64, [])
            b = IRBuilder(fn.add_block("entry"))
            buf = b.alloca(ArrayType(I64, 8))
            p = b.gep(buf, const_int(3))
            b.store(const_int(7), p)
            b.ret(b.load(p))

        result, _ = run_main(build)
        assert result.value == 7

    def test_global_override_sets_input(self):
        def build(m):
            m.add_global("n", I64, 5)
            fn = m.add_function("main", I64, [])
            b = IRBuilder(fn.add_block("entry"))
            g = m.get_global("n")
            b.ret(b.load(g))

        m = build_module(build)
        interp = Interpreter(m)
        assert interp.run().value == 5
        interp.set_global_override("n", 42)
        assert interp.run().value == 42

    def test_atomicrmw_returns_old_value(self):
        def build(m):
            g = m.add_global("ctr", I64, 10)
            fn = m.add_function("main", I64, [])
            b = IRBuilder(fn.add_block("entry"))
            old = b.atomic_add(g, const_int(5))
            b.ret(old)

        result, interp = run_main(build)
        assert result.value == 10
        assert interp.read_global("ctr") == 15


class TestCallsAndIntrinsics:
    def test_call_defined_function(self):
        def build(m):
            sq = m.add_function("square", I64, [I64], ["x"])
            bs = IRBuilder(sq.add_block("entry"))
            bs.ret(bs.mul(sq.args[0], sq.args[0]))
            fn = m.add_function("main", I64, [])
            b = IRBuilder(fn.add_block("entry"))
            b.ret(b.call(sq, [const_int(9)]))

        result, _ = run_main(build)
        assert result.value == 81

    def test_recursive_factorial(self):
        def build(m):
            fact = m.add_function("fact", I64, [I64], ["n"])
            entry = fact.add_block("entry")
            base = fact.add_block("base")
            rec = fact.add_block("rec")
            b = IRBuilder(entry)
            c = b.icmp("sle", fact.args[0], const_int(1))
            b.cond_br(c, base, rec)
            IRBuilder(base).ret(const_int(1))
            br = IRBuilder(rec)
            nm1 = br.sub(fact.args[0], const_int(1))
            sub = br.call(fact, [nm1])
            br.ret(br.mul(fact.args[0], sub))
            fn = m.add_function("main", I64, [])
            bm = IRBuilder(fn.add_block("entry"))
            bm.ret(bm.call(fact, [const_int(10)]))

        result, _ = run_main(build)
        assert result.value == 3628800

    def test_infinite_recursion_is_a_trap(self):
        def build(m):
            f = m.add_function("f", I64, [])
            b = IRBuilder(f.add_block("entry"))
            b.ret(b.call(f))
            fn = m.add_function("main", I64, [])
            bm = IRBuilder(fn.add_block("entry"))
            bm.ret(bm.call(f))

        result, _ = run_main(build)
        assert result.status == "trap"

    def test_sqrt_intrinsic(self):
        def build(m):
            fn = m.add_function("main", F64, [])
            b = IRBuilder(fn.add_block("entry"))
            b.ret(b.call_intrinsic("sqrt", [const_float(2.25)]))

        result, _ = run_main(build)
        assert result.value == 1.5

    def test_sqrt_of_negative_is_nan(self):
        def build(m):
            fn = m.add_function("main", F64, [])
            b = IRBuilder(fn.add_block("entry"))
            b.ret(b.call_intrinsic("sqrt", [const_float(-1.0)]))

        result, _ = run_main(build)
        assert result.status == "ok"
        assert math.isnan(result.value)

    def test_print_collects_output(self):
        def build(m):
            fn = m.add_function("main", VOID, [])
            b = IRBuilder(fn.add_block("entry"))
            b.call_intrinsic("print_f64", [const_float(3.5)])
            b.call_intrinsic("print_i64", [const_int(7)])
            b.ret()

        result, interp = run_main(build)
        assert interp.output_log == [3.5, 7]

    def test_serial_mpi_identities(self):
        def build(m):
            fn = m.add_function("main", F64, [])
            b = IRBuilder(fn.add_block("entry"))
            r = b.call_intrinsic("mpi_rank")
            rf = b.sitofp(r)
            s = b.call_intrinsic("mpi_allreduce_sum_f64", [const_float(4.5)])
            b.call_intrinsic("mpi_barrier")
            b.ret(b.fadd(rf, s))

        result, _ = run_main(build)
        assert result.value == 4.5  # rank 0 + identity allreduce


class TestCyclesAndProfiling:
    def loop_module(self, n=100):
        def build(m):
            fn = m.add_function("main", I64, [])
            entry = fn.add_block("entry")
            header = fn.add_block("header")
            body = fn.add_block("body")
            exit_ = fn.add_block("exit")
            IRBuilder(entry).br(header)
            bh = IRBuilder(header)
            i = bh.phi(I64, "i")
            cond = bh.icmp("slt", i, const_int(n))
            bh.cond_br(cond, body, exit_)
            bb = IRBuilder(body)
            i2 = bb.add(i, const_int(1))
            bb.br(header)
            i.add_incoming(const_int(0), entry)
            i.add_incoming(i2, body)
            IRBuilder(exit_).ret(i)

        return build_module(build)

    def test_cycles_are_deterministic(self):
        m = self.loop_module()
        interp = Interpreter(m)
        r1 = interp.run()
        r2 = interp.run()
        assert r1.cycles == r2.cycles > 0

    def test_cycles_scale_with_work(self):
        c100 = Interpreter(self.loop_module(100)).run().cycles
        c200 = Interpreter(self.loop_module(200)).run().cycles
        assert 1.8 < c200 / c100 < 2.2

    def test_hang_detection(self):
        m = self.loop_module(10**9)
        interp = Interpreter(m)
        result = interp.run(cycle_budget=10_000)
        assert result.status == "hang"

    def test_profile_counts_block_executions(self):
        m = self.loop_module(10)
        interp = Interpreter(m)
        result = interp.run(profile=True)
        assert result.profile is not None
        # entry 1, header 11, body 10, exit 1
        assert sorted(result.profile) == [1, 1, 10, 11]

    def test_custom_cost_model(self):
        m = self.loop_module(10)
        cheap = Interpreter(m, cost_model=CostModel({"add": 1})).run().cycles
        costly = Interpreter(m, cost_model=CostModel({"add": 100})).run().cycles
        assert costly > cheap


class TestFaultInjection:
    def add_module(self):
        """main returns a+b computed dynamically (via identity function)."""
        m = Module("t")
        ident = m.add_function("ident", I64, [I64], ["x"])
        bi = IRBuilder(ident.add_block("entry"))
        bi.ret(ident.args[0])
        fn = m.add_function("main", I64, [])
        b = IRBuilder(fn.add_block("entry"))
        a = b.call(ident, [const_int(100)])
        c = b.call(ident, [const_int(23)])
        s = b.add(a, c, "sum")
        b.ret(s)
        verify_module(m)
        return m, s

    def test_injection_flips_result_bit(self):
        m, target = self.add_module()
        interp = Interpreter(m)
        clean = interp.run()
        assert clean.value == 123
        faulty = interp.run(injection=(target, 1, 3))
        assert faulty.status == "ok"
        assert faulty.injection_hit
        assert faulty.value == 123 ^ 8

    def test_injection_is_transient(self):
        m, target = self.add_module()
        interp = Interpreter(m)
        interp.run(injection=(target, 1, 3))
        clean_again = interp.run()
        assert clean_again.value == 123
        assert not clean_again.injection_hit

    def test_injection_occurrence_targets_dynamic_instance(self):
        def build(m):
            fn = m.add_function("main", I64, [])
            entry = fn.add_block("entry")
            header = fn.add_block("header")
            body = fn.add_block("body")
            exit_ = fn.add_block("exit")
            IRBuilder(entry).br(header)
            bh = IRBuilder(header)
            i = bh.phi(I64, "i")
            acc = bh.phi(I64, "acc")
            cond = bh.icmp("slt", i, const_int(4))
            bh.cond_br(cond, body, exit_)
            bb = IRBuilder(body)
            acc2 = bb.add(acc, const_int(1), "acc2")
            i2 = bb.add(i, const_int(1))
            bb.br(header)
            i.add_incoming(const_int(0), entry)
            i.add_incoming(i2, body)
            acc.add_incoming(const_int(0), entry)
            acc.add_incoming(acc2, body)
            IRBuilder(exit_).ret(acc)

        m = build_module(build)
        target = next(i for i in m.instructions() if i.name == "acc2")
        interp = Interpreter(m)
        assert interp.run().value == 4
        # Flip bit 4 (=16) of acc2 on its 2nd execution: acc becomes 2^16+2
        # then increments twice more.
        faulty = interp.run(injection=(target, 2, 4))
        assert faulty.injection_hit
        assert faulty.value == 16 + 4

    def test_injection_missed_when_occurrence_never_reached(self):
        m, target = self.add_module()
        interp = Interpreter(m)
        result = interp.run(injection=(target, 99, 0))
        assert result.status == "ok"
        assert not result.injection_hit
        assert result.value == 123

    def test_injection_in_float_value(self):
        m = Module("t")
        ident = m.add_function("ident", F64, [F64], ["x"])
        bi = IRBuilder(ident.add_block("entry"))
        bi.ret(ident.args[0])
        fn = m.add_function("main", F64, [])
        b = IRBuilder(fn.add_block("entry"))
        a = b.call(ident, [const_float(1.0)])
        s = b.fmul(a, const_float(1.0), "prod")
        b.ret(s)
        verify_module(m)
        interp = Interpreter(m)
        # Flip the top exponent bit of 1.0 -> huge change.
        faulty = interp.run(injection=(s, 1, 62))
        assert faulty.injection_hit
        assert faulty.value != 1.0

    def test_injection_in_address_traps(self):
        m = Module("t")
        g = m.add_global("data", ArrayType(I64, 4))
        fn = m.add_function("main", I64, [])
        b = IRBuilder(fn.add_block("entry"))
        p = b.gep(g, const_int(0), "ptr")
        b.store(const_int(1), p)
        v = b.load(p)
        b.ret(v)
        verify_module(m)
        interp = Interpreter(m)
        # Flip a high bit of the computed address: wild store -> trap.
        faulty = interp.run(injection=(p, 1, 50))
        assert faulty.status == "trap"
