"""Tests for the simulated OpenMP runtime (outlined parallel regions)."""

import pytest

from repro import compile_source
from repro.parallel import FORK_JOIN_COST, OmpRuntime
from repro.protect import FullDuplicationSelector, duplicate_instructions

# The standard OpenMP lowering shape: a setup function, an outlined region
# taking (tid, nthreads), and shared global state.
SOURCE = """
int n = 64;
output double result[1];
double data[64];
double partial[16];      // one slot per thread (max 16 threads)
int hits = 0;            // atomic counter exercised by the region

void setup() {
    for (int i = 0; i < n; i = i + 1) { data[i] = (double)(i + 1); }
    for (int t = 0; t < 16; t = t + 1) { partial[t] = 0.0; }
}

// Outlined parallel region: block-partitioned sum of squares.
void region(int tid, int nthreads) {
    int chunk = (n + nthreads - 1) / nthreads;
    int lo = tid * chunk;
    int hi = lo + chunk;
    if (hi > n) { hi = n; }
    if (lo > n) { lo = n; }
    double acc = 0.0;
    for (int i = lo; i < hi; i = i + 1) {
        acc = acc + data[i] * data[i];
    }
    partial[tid] = acc;
}

void reduce(int nthreads) {
    double total = 0.0;
    for (int t = 0; t < nthreads; t = t + 1) { total = total + partial[t]; }
    result[0] = total;
}
"""

EXPECTED = sum(float(i + 1) ** 2 for i in range(64))


def run_omp(nthreads, module=None):
    runtime = OmpRuntime(module if module is not None else compile_source(SOURCE), nthreads)
    runtime.start()
    runtime.run_serial("setup")
    region = runtime.run_region("region")
    runtime.run_serial("reduce", (nthreads,))
    return runtime, region


class TestOmpRuntime:
    @pytest.mark.parametrize("nthreads", [1, 2, 4, 8])
    def test_result_independent_of_thread_count(self, nthreads):
        runtime, region = run_omp(nthreads)
        assert region.status == "ok"
        assert runtime.read_global("result")[0] == EXPECTED

    def test_threads_share_memory(self):
        runtime, _ = run_omp(4)
        partial = runtime.read_global("partial")
        assert sum(partial[:4]) == EXPECTED
        assert all(p > 0 for p in partial[:4])

    def test_region_time_is_critical_path(self):
        runtime, region = run_omp(4)
        assert region.region_cycles == max(region.thread_cycles) + FORK_JOIN_COST
        assert len(region.thread_cycles) == 4

    def test_parallel_region_scales(self):
        _, r1 = run_omp(1)
        _, r4 = run_omp(4)
        # 4 threads each do ~1/4 of the work: the critical path shrinks.
        assert r4.region_cycles < r1.region_cycles
        speedup = r1.region_cycles / r4.region_cycles
        assert speedup > 2.0

    def test_job_cycles_accumulate(self):
        runtime, region = run_omp(2)
        assert runtime.job_cycles == runtime.serial_cycles + runtime.parallel_cycles
        assert runtime.parallel_cycles >= region.region_cycles

    def test_thread_count_validation(self):
        with pytest.raises(ValueError):
            OmpRuntime(compile_source(SOURCE), 0)

    def test_outlined_signature_validated(self):
        runtime = OmpRuntime(compile_source(SOURCE), 2)
        with pytest.raises(ValueError, match="tid, nthreads"):
            runtime.run_region("setup")

    def test_failing_thread_fails_region(self):
        source = SOURCE.replace(
            "partial[tid] = acc;",
            "partial[tid] = acc / (double)(data[70]);  // OOB -> trap",
        )
        runtime = OmpRuntime(compile_source(source), 2)
        runtime.start()
        runtime.run_serial("setup")
        region = runtime.run_region("region")
        assert region.status == "failed"
        assert "MemoryFault" in region.error


class TestProtectedOpenMp:
    def test_protection_preserves_openmp_semantics(self):
        """Paper §4.4.1: outlined functions are safe to protect because
        calls and control flow are never duplicated."""
        module = compile_source(SOURCE)
        duplicate_instructions(module, FullDuplicationSelector().select(module))
        runtime, region = run_omp(4, module=module)
        assert region.status == "ok"
        assert runtime.read_global("result")[0] == EXPECTED

    def test_protected_region_slowdown_flat_across_threads(self):
        clean = compile_source(SOURCE)
        protected = compile_source(SOURCE)
        duplicate_instructions(
            protected, FullDuplicationSelector().select(protected)
        )
        slowdowns = []
        for nthreads in (1, 2, 4):
            clean_rt, _ = run_omp(nthreads, module=compile_source(SOURCE))
            prot_rt, _ = run_omp(nthreads, module=protected)
            slowdowns.append(prot_rt.job_cycles / clean_rt.job_cycles)
        # Fig.-8 reasoning applies to threads too: the ratio stays flat.
        assert max(slowdowns) - min(slowdowns) < 0.3
        assert all(s > 1.0 for s in slowdowns)

    def test_atomic_counter_region(self):
        source = """
        int hits = 0;
        output double result[1];
        void region(int tid, int nthreads) {
            for (int i = 0; i < 10; i = i + 1) {
                int old = __atomic_bump();
            }
        }
        int __atomic_bump() { return 0; }
        void finish() { result[0] = (double)hits; }
        """
        # Exercise atomicrmw through the IR directly (scil has no atomic
        # syntax; real OpenMP lowering emits the instruction).
        from repro.ir import IRBuilder, I64, const_int

        module = compile_source(source)
        bump = module.get_function("__atomic_bump")
        # Replace the stub body: atomically increment @hits.
        for block in list(bump.blocks):
            for inst in list(block.instructions):
                inst.drop_operands()
                block.remove(inst)
            bump.remove_block(block)
        builder = IRBuilder(bump.add_block("entry"))
        old = builder.atomic_add(module.get_global("hits"), const_int(1))
        builder.ret(old)
        runtime = OmpRuntime(module, 4)
        runtime.start()
        region = runtime.run_region("region")
        runtime.run_serial("finish")
        assert region.status == "ok"
        assert runtime.read_global("result")[0] == 40.0
