"""Tests for the duplication pass and selectors: semantics preservation,
check placement, overhead accounting, and detection of injected faults."""

import pytest

from repro import compile_source
from repro.faults import Campaign, FaultSite, Outcome, injectable_instructions
from repro.interp import Interpreter, run_module
from repro.ir import is_check_intrinsic, verify_module
from repro.protect import (
    DuplicationPass,
    FullDuplicationSelector,
    NoProtectionSelector,
    duplicate_instructions,
    is_duplicable,
)

KERNEL = """
int n = 12;
output double result[4];

double norm(double a[], int n) {
    double s = 0.0;
    for (int i = 0; i < n; i = i + 1) {
        s = s + a[i] * a[i];
    }
    return sqrt(s);
}

void main() {
    double x[16];
    for (int i = 0; i < n; i = i + 1) { x[i] = (double)(i + 1) * 0.5; }
    result[0] = norm(x, n);
    result[1] = result[0] * 2.0;
}
"""


def protected_module(selector=None):
    module = compile_source(KERNEL, name="kernel")
    selector = selector or FullDuplicationSelector()
    report = duplicate_instructions(module, selector.select(module))
    return module, report


class TestDuplicationPass:
    def test_full_duplication_preserves_semantics(self):
        clean = compile_source(KERNEL)
        clean_result, clean_interp = run_module(clean)
        module, report = protected_module()
        result, interp = run_module(module)
        assert result.status == "ok"
        assert interp.read_global("result") == clean_interp.read_global("result")
        assert report.duplicated > 0

    def test_report_counts(self):
        module, report = protected_module()
        assert report.duplicated == report.eligible > 0
        assert report.checks_inserted == report.paths > 0
        assert report.duplicated_fraction == 1.0

    def test_no_protection_changes_nothing(self):
        module = compile_source(KERNEL)
        before = module.static_instruction_count
        report = duplicate_instructions(module, NoProtectionSelector().select(module))
        assert module.static_instruction_count == before
        assert report.duplicated == 0

    def test_checks_use_typed_intrinsics(self):
        module, _ = protected_module()
        check_fns = [f for f in module.functions.values() if is_check_intrinsic(f)]
        assert check_fns
        for fn in check_fns:
            assert fn.is_declaration
            assert len(fn.ftype.param_types) == 2
            assert fn.ftype.param_types[0] == fn.ftype.param_types[1]

    def test_protected_module_verifies(self):
        module, _ = protected_module()
        verify_module(module)

    def test_overhead_increases_cycles(self):
        clean_cycles = run_module(compile_source(KERNEL))[0].cycles
        module, _ = protected_module()
        protected_cycles = run_module(module)[0].cycles
        assert protected_cycles > clean_cycles
        slowdown = protected_cycles / clean_cycles
        assert 1.0 < slowdown < 4.0

    def test_partial_selection_smaller_overhead(self):
        module_full, _ = protected_module()
        full_cycles = run_module(module_full)[0].cycles

        module = compile_source(KERNEL)
        eligible = [i for i in module.instructions() if is_duplicable(i)]
        half = eligible[: len(eligible) // 2]
        duplicate_instructions(module, half)
        half_cycles = run_module(module)[0].cycles
        clean_cycles = run_module(compile_source(KERNEL))[0].cycles
        assert clean_cycles < half_cycles < full_cycles

    def test_duplicates_feed_only_duplicates_and_checks(self):
        module, _ = protected_module()
        for fn in module.defined_functions():
            for inst in fn.instructions():
                if not inst.name.endswith(".dup"):
                    continue
                for user in inst.users:
                    ok = user.name.endswith(".dup") or (
                        user.opcode == "call"
                        and is_check_intrinsic(user.callee)
                    )
                    assert ok, f"duplicate {inst!r} leaks into {user!r}"

    def test_duplication_paths_within_block(self):
        module = compile_source(KERNEL)
        dp = DuplicationPass(module)
        report = dp.run(FullDuplicationSelector().select(module))
        # Each path's instructions must share a block.
        assert report.paths >= 1


class TestFaultDetection:
    def test_injected_fault_into_duplicated_instruction_is_detected(self):
        module, _ = protected_module()
        interp = Interpreter(module)
        # Pick a duplicated original (has a .dup sibling) in the hot loop.
        norm = module.get_function("norm")
        target = next(
            i
            for i in norm.instructions()
            if i.opcode == "fmul" and not i.name.endswith(".dup")
        )
        result = interp.run(injection=(target, 2, 60))
        assert result.status == "detected"

    def test_detection_close_to_occurrence(self):
        """The check fires before the corrupted value crosses the block."""
        module, _ = protected_module()
        interp = Interpreter(module)
        norm = module.get_function("norm")
        target = next(
            i
            for i in norm.instructions()
            if i.opcode == "fadd" and not i.name.endswith(".dup")
        )
        clean_cycles = interp.run().cycles
        result = interp.run(injection=(target, 1, 55))
        assert result.status == "detected"
        assert result.cycles < clean_cycles  # aborted early

    def test_campaign_on_protected_module_detects(self):
        module, _ = protected_module()
        interp = Interpreter(module)
        campaign = Campaign(interp)
        result = campaign.run(80, seed=11)
        # Full duplication must detect a solid share of injected faults and
        # strongly suppress SOC relative to typical unprotected rates.
        assert result.counts.detected_fraction > 0.2
        assert result.counts.soc_fraction < 0.1

    def test_unprotected_campaign_has_soc_or_masking_only(self):
        module = compile_source(KERNEL)
        interp = Interpreter(module)
        result = Campaign(interp).run(60, seed=3)
        assert result.counts.detected_fraction == 0.0

    def test_low_mantissa_bits_often_masked_high_bits_not(self):
        """Motivation experiment (paper §2): exponent flips hurt more."""
        module = compile_source(KERNEL)
        interp = Interpreter(module)
        campaign = Campaign(interp)
        campaign.prepare()
        norm = module.get_function("norm")
        target = next(i for i in norm.instructions() if i.opcode == "fadd")
        low = campaign.run_site(FaultSite(target, 3, 2))     # deep mantissa
        high = campaign.run_site(FaultSite(target, 3, 62))   # exponent
        assert low.outcome is Outcome.MASKED
        assert high.outcome in (Outcome.SOC, Outcome.CRASH, Outcome.HANG)
