"""Unit tests for CFG analyses: dominators, loops, dataflow, call graph."""

import pytest

from repro.analysis import (
    CallGraph,
    DominatorTree,
    LoopInfo,
    block_liveness,
    distance_to_return,
    instructions_to_return,
    postorder,
    predecessor_map,
    reachable_blocks,
    remove_unreachable_blocks,
    reverse_postorder,
)
from repro.ir import I1, I64, IRBuilder, Module, VOID, const_bool, const_int, verify_module


def diamond():
    """entry -> {left, right} -> exit."""
    m = Module("t")
    fn = m.add_function("f", I64, [I1], ["c"])
    entry = fn.add_block("entry")
    left = fn.add_block("left")
    right = fn.add_block("right")
    exit_ = fn.add_block("exit")
    IRBuilder(entry).cond_br(fn.args[0], left, right)
    bl = IRBuilder(left)
    lv = bl.add(const_int(1), const_int(2))
    bl.br(exit_)
    br = IRBuilder(right)
    rv = br.add(const_int(3), const_int(4))
    br.br(exit_)
    be = IRBuilder(exit_)
    phi = be.phi(I64, "merged")
    phi.add_incoming(lv, left)
    phi.add_incoming(rv, right)
    be.ret(phi)
    verify_module(m)
    return m, fn, (entry, left, right, exit_)


def simple_loop():
    """entry -> header <-> body; header -> exit."""
    m = Module("t")
    fn = m.add_function("f", I64, [I64], ["n"])
    entry = fn.add_block("entry")
    header = fn.add_block("header")
    body = fn.add_block("body")
    exit_ = fn.add_block("exit")
    IRBuilder(entry).br(header)
    bh = IRBuilder(header)
    i = bh.phi(I64, "i")
    cond = bh.icmp("slt", i, fn.args[0])
    bh.cond_br(cond, body, exit_)
    bb = IRBuilder(body)
    inext = bb.add(i, const_int(1))
    bb.br(header)
    i.add_incoming(const_int(0), entry)
    i.add_incoming(inext, body)
    IRBuilder(exit_).ret(i)
    verify_module(m)
    return m, fn, (entry, header, body, exit_)


class TestCFG:
    def test_reachable_blocks_order(self):
        _, fn, (entry, left, right, exit_) = diamond()
        reach = reachable_blocks(fn)
        assert reach[0] is entry
        assert set(reach) == {entry, left, right, exit_}

    def test_postorder_entry_last(self):
        _, fn, (entry, *_rest) = diamond()
        po = postorder(fn)
        assert po[-1] is entry
        assert reverse_postorder(fn)[0] is entry

    def test_postorder_handles_loops(self):
        _, fn, blocks = simple_loop()
        assert set(postorder(fn)) == set(blocks)

    def test_predecessor_map(self):
        _, fn, (entry, left, right, exit_) = diamond()
        preds = predecessor_map(fn)
        assert preds[entry] == []
        assert set(preds[exit_]) == {left, right}

    def test_remove_unreachable(self):
        m, fn, (entry, left, right, exit_) = diamond()
        orphan = fn.add_block("orphan")
        IRBuilder(orphan).br(exit_)
        # exit_ phi now has a stale pred-less entry only after removal; the
        # orphan contributes no phi entries, so removal is clean.
        removed = remove_unreachable_blocks(fn)
        assert removed == 1
        assert orphan not in fn.blocks
        verify_module(m)

    def test_remove_unreachable_fixes_phis(self):
        m, fn, (entry, left, right, exit_) = diamond()
        orphan = fn.add_block("orphan")
        bo = IRBuilder(orphan)
        ov = bo.add(const_int(9), const_int(9))
        bo.br(exit_)
        phi = exit_.phis()[0]
        phi.add_incoming(ov, orphan)
        remove_unreachable_blocks(fn)
        assert len(phi.incoming_blocks) == 2
        verify_module(m)


class TestDominators:
    def test_diamond_idoms(self):
        _, fn, (entry, left, right, exit_) = diamond()
        dom = DominatorTree(fn)
        assert dom.immediate_dominator(entry) is None
        assert dom.immediate_dominator(left) is entry
        assert dom.immediate_dominator(right) is entry
        assert dom.immediate_dominator(exit_) is entry

    def test_dominates(self):
        _, fn, (entry, left, right, exit_) = diamond()
        dom = DominatorTree(fn)
        assert dom.dominates(entry, exit_)
        assert dom.dominates(entry, entry)
        assert not dom.dominates(left, exit_)
        assert not dom.strictly_dominates(entry, entry)

    def test_loop_idoms(self):
        _, fn, (entry, header, body, exit_) = simple_loop()
        dom = DominatorTree(fn)
        assert dom.immediate_dominator(header) is entry
        assert dom.immediate_dominator(body) is header
        assert dom.immediate_dominator(exit_) is header

    def test_dominance_frontiers_diamond(self):
        _, fn, (entry, left, right, exit_) = diamond()
        dom = DominatorTree(fn)
        df = dom.dominance_frontiers()
        assert df[left] == {exit_}
        assert df[right] == {exit_}
        assert df[entry] == set()

    def test_dominance_frontier_loop_header(self):
        _, fn, (entry, header, body, exit_) = simple_loop()
        df = DominatorTree(fn).dominance_frontiers()
        assert header in df[body]
        assert header in df[header]  # header is in its own frontier

    def test_dfs_preorder_starts_at_entry(self):
        _, fn, (entry, *_r) = diamond()
        dom = DominatorTree(fn)
        pre = dom.dfs_preorder()
        assert pre[0] is entry
        assert len(pre) == 4


class TestLoops:
    def test_no_loops_in_diamond(self):
        _, fn, _ = diamond()
        info = LoopInfo(fn)
        assert len(info) == 0

    def test_simple_loop_detected(self):
        _, fn, (entry, header, body, exit_) = simple_loop()
        info = LoopInfo(fn)
        assert len(info) == 1
        loop = info.loops[0]
        assert loop.header is header
        assert loop.blocks == frozenset({header, body})
        assert info.in_loop(header) and info.in_loop(body)
        assert not info.in_loop(entry) and not info.in_loop(exit_)

    def test_nested_loops(self):
        m = Module("t")
        fn = m.add_function("f", VOID, [I1, I1], ["a", "b"])
        entry = fn.add_block("entry")
        outer = fn.add_block("outer")
        inner = fn.add_block("inner")
        after = fn.add_block("after")
        IRBuilder(entry).br(outer)
        IRBuilder(outer).br(inner)
        IRBuilder(inner).cond_br(fn.args[0], inner, after)
        IRBuilder(after).cond_br(fn.args[1], outer, fn.add_block("exit"))
        IRBuilder(fn.blocks[-1]).ret()
        verify_module(m)
        info = LoopInfo(fn)
        assert len(info) == 2
        assert info.loop_nest_depth(inner) == 2
        assert info.loop_nest_depth(outer) == 1


class TestDataflow:
    def test_distance_to_return_diamond(self):
        _, fn, (entry, left, right, exit_) = diamond()
        dist = distance_to_return(fn)
        assert dist[exit_] == 0
        assert dist[left] == len(exit_.instructions)
        assert dist[entry] == min(
            len(left.instructions), len(right.instructions)
        ) + len(exit_.instructions)

    def test_instructions_to_return(self):
        _, fn, (entry, header, body, exit_) = simple_loop()
        ret = exit_.instructions[-1]
        assert instructions_to_return(ret) == 0
        # The add in the body: rest of body (br) then header (3) then exit (1)
        add = body.instructions[0]
        assert instructions_to_return(add) == 1 + 3 + 1

    def test_liveness_in_loop(self):
        _, fn, (entry, header, body, exit_) = simple_loop()
        live_in, live_out = block_liveness(fn)
        i = header.phis()[0]
        inext = body.instructions[0]
        assert i in live_in[body]
        assert inext in live_out[body]  # feeds the phi on the back edge
        assert i in live_in[exit_]

    def test_liveness_no_dead_values_live(self):
        _, fn, (entry, left, right, exit_) = diamond()
        live_in, _ = block_liveness(fn)
        assert live_in[entry] == set()


class TestCallGraph:
    def make_call_chain(self):
        m = Module("t")
        leaf = m.add_function("leaf", I64, [])
        IRBuilder(leaf.add_block("entry")).ret(const_int(1))
        mid = m.add_function("mid", I64, [])
        bm = IRBuilder(mid.add_block("entry"))
        v = bm.call(leaf)
        bm.ret(v)
        main = m.add_function("main", I64, [])
        bmain = IRBuilder(main.add_block("entry"))
        v2 = bmain.call(mid)
        bmain.ret(v2)
        verify_module(m)
        return m

    def test_edges(self):
        m = self.make_call_chain()
        cg = CallGraph(m)
        assert cg.callees["main"] == {"mid"}
        assert cg.callers["leaf"] == {"mid"}

    def test_reachability(self):
        cg = CallGraph(self.make_call_chain())
        assert cg.reachable_from("main") == {"main", "mid", "leaf"}
        assert cg.reachable_from("leaf") == {"leaf"}

    def test_topological_order(self):
        cg = CallGraph(self.make_call_chain())
        order = cg.topological_order()
        assert order.index("leaf") < order.index("mid") < order.index("main")

    def test_recursion_detection(self):
        m = Module("t")
        f = m.add_function("f", VOID, [])
        b = IRBuilder(f.add_block("entry"))
        b.call(f)
        b.ret()
        cg = CallGraph(m)
        assert cg.is_recursive(f)
