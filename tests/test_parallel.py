"""Tests for the simulated MPI runtime."""

import pytest

from repro import compile_source
from repro.parallel import MpiJob

ALLREDUCE = """
output double result[2];
void main() {
    int rank = mpi_rank();
    int size = mpi_size();
    double mine = (double)(rank + 1);
    double total = mpi_allreduce_sum(mine);
    mpi_barrier();
    if (rank == 0) {
        result[0] = total;
        result[1] = (double)size;
    }
}
"""

ARRAY_REDUCE = """
int n = 8;
output double vec[8];
void main() {
    int rank = mpi_rank();
    int size = mpi_size();
    double local[8];
    for (int i = 0; i < n; i = i + 1) {
        if (i % size == rank) { local[i] = (double)(i * i); }
        else { local[i] = 0.0; }
    }
    mpi_allreduce_sum_array(local, n);
    for (int i = 0; i < n; i = i + 1) { vec[i] = local[i]; }
}
"""

SENDRECV_RING = """
output double got[8];
void main() {
    int rank = mpi_rank();
    int size = mpi_size();
    double send[2];
    double recv[2];
    send[0] = (double)rank;
    send[1] = (double)(rank * 10);
    int peer = (rank + 1) % size;
    mpi_sendrecv(send, recv, 2, peer);
    got[rank] = recv[0];
}
"""

BCAST = """
output double result[4];
void main() {
    int rank = mpi_rank();
    double v = 0.0;
    if (rank == 0) { v = 42.0; }
    double shared = mpi_bcast(v, 0);
    result[rank] = shared;
}
"""

DIVERGENT = """
output double result[1];
void main() {
    int rank = mpi_rank();
    if (rank == 0) {
        return;  // exits without reaching the barrier
    }
    mpi_barrier();
    result[0] = 1.0;
}
"""


class TestCollectives:
    @pytest.mark.parametrize("ranks", [1, 2, 4])
    def test_allreduce_sum(self, ranks):
        job = MpiJob(compile_source(ALLREDUCE), ranks)
        result = job.run()
        assert result.status == "ok"
        assert job.read_global("result", 0) == [ranks * (ranks + 1) / 2, float(ranks)]

    @pytest.mark.parametrize("ranks", [1, 2, 4])
    def test_array_allreduce_partitions(self, ranks):
        job = MpiJob(compile_source(ARRAY_REDUCE), ranks)
        result = job.run()
        assert result.status == "ok"
        for rank in range(ranks):
            assert job.read_global("vec", rank) == [float(i * i) for i in range(8)]

    def test_sendrecv_ring(self):
        job = MpiJob(compile_source(SENDRECV_RING), 4)
        result = job.run()
        assert result.status == "ok"
        # Rank r receives from rank r-1 (which sent to r).
        for rank in range(4):
            got = job.read_global("got", rank)
            assert got[rank] == float((rank - 1) % 4)

    def test_bcast(self):
        job = MpiJob(compile_source(BCAST), 3)
        result = job.run()
        assert result.status == "ok"
        for rank in range(3):
            assert job.read_global("result", rank)[rank] == 42.0

    def test_overrides_apply_to_all_ranks(self):
        job = MpiJob(compile_source(ARRAY_REDUCE), 2, overrides={"n": 4})
        result = job.run()
        assert result.status == "ok"
        assert job.read_global("vec", 0)[:4] == [0.0, 1.0, 4.0, 9.0]
        assert job.read_global("vec", 0)[4:] == [0.0] * 4


class TestTimingAndFailure:
    def test_job_cycles_is_max_over_ranks(self):
        job = MpiJob(compile_source(ALLREDUCE), 4)
        result = job.run()
        assert result.job_cycles == max(r.cycles for r in result.rank_results)

    def test_deterministic_across_runs(self):
        job = MpiJob(compile_source(ARRAY_REDUCE), 4)
        c1 = job.run().job_cycles
        c2 = job.run().job_cycles
        assert c1 == c2

    def test_divergent_exit_aborts_job(self):
        job = MpiJob(compile_source(DIVERGENT), 3, collective_timeout=5.0)
        result = job.run()
        assert result.status == "abort"

    def test_fault_in_one_rank_aborts_job(self):
        source = """
        output double result[1];
        void main() {
            int rank = mpi_rank();
            int denom = 1;
            if (rank == 0) { denom = 0; }
            result[0] = (double)(10 / denom);
            mpi_barrier();
        }
        """
        job = MpiJob(compile_source(source), 3, collective_timeout=5.0)
        result = job.run()
        assert result.status == "trap"
        assert result.statuses[0] == "trap"

    def test_injection_into_one_rank(self):
        module = compile_source(ALLREDUCE)
        target = next(
            i for i in module.instructions() if i.opcode == "sitofp"
        )
        job = MpiJob(module, 2, collective_timeout=5.0)
        clean = job.run()
        assert clean.status == "ok"
        faulty = job.run(injection=((target, 1, 62), 1))
        # The corrupted value feeds the allreduce; job completes with a
        # wrong answer or rank 1 dies -- either way rank 0's total differs
        # or the job aborted.
        if faulty.status == "ok":
            assert job.read_global("result", 0) != [3.0, 2.0]

    def test_single_rank_matches_serial(self):
        from repro.interp import run_module

        module = compile_source(ARRAY_REDUCE)
        serial_result, serial_interp = run_module(module)
        job = MpiJob(compile_source(ARRAY_REDUCE), 1)
        job_result = job.run()
        assert job_result.status == "ok" == serial_result.status
        assert job.read_global("vec", 0) == serial_interp.read_global("vec")

    def test_rank_count_validation(self):
        with pytest.raises(ValueError):
            MpiJob(compile_source(ALLREDUCE), 0)
