"""Determinism-under-failure suite: the chaos harness against the supervisor.

The parallel engine's contract is that campaign results are bit-identical
to an undisturbed serial run for any worker count.  These tests re-assert
that contract while the chaos harness kills workers mid-chunk, delays
chunks past the wall-clock deadline, corrupts checkpoint lines, and
collapses the pool entirely.
"""

import json
import os

import pytest

from repro import compile_source
from repro.faults import (
    Campaign,
    CampaignCheckpoint,
    CheckpointMismatchError,
    CheckpointWarning,
    Outcome,
    SupervisorPolicy,
    TrialFailure,
    campaign_fingerprint,
    fork_available,
    verify_checkpoint,
)
from repro.faults.chaos import ChaosMonkey, corrupt_checkpoint, parse_chaos_spec
from repro.interp import Interpreter

KERNEL = """
int n = 12;
output double result[4];

double work(double a[], int n) {
    double s = 0.0;
    for (int i = 0; i < n; i = i + 1) {
        s = s + a[i] * a[i];
    }
    return sqrt(s);
}

void main() {
    double x[16];
    for (int i = 0; i < n; i = i + 1) { x[i] = (double)(i + 1); }
    result[0] = work(x, n);
    result[1] = (double)n;
}
"""

N_TRIALS = 24
SEED = 11

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="supervised pool needs the fork start method"
)


def make_campaign():
    return Campaign(Interpreter(compile_source(KERNEL, name="kernel")))


def record_key(record):
    return (
        record.site.instruction.opcode,
        record.site.occurrence,
        record.site.bit,
        record.outcome,
        record.status,
        record.cycles,
    )


@pytest.fixture(scope="module")
def serial_baseline():
    result = make_campaign().run(N_TRIALS, seed=SEED)
    return [record_key(r) for r in result.records]


def assert_identical(result, serial_baseline):
    assert [record_key(r) for r in result.records] == serial_baseline


@needs_fork
class TestWorkerDeath:
    def test_killed_worker_bit_identical(self, serial_baseline, tmp_path):
        chaos = ChaosMonkey(kill_at=[5], state_dir=str(tmp_path / "chaos"))
        result = make_campaign().run(N_TRIALS, seed=SEED, n_jobs=2, chaos=chaos)
        assert_identical(result, serial_baseline)
        stats = result.stats
        assert stats.worker_deaths >= 1
        assert stats.retries >= 1
        assert stats.harness_events > 0
        assert "deaths" in stats.progress_line()
        assert stats.as_dict()["harness"]["worker_deaths"] >= 1

    def test_two_kills_bit_identical(self, serial_baseline, tmp_path):
        # One kill in each worker's opening chunk: both die, the pool
        # empties, and at least one respawn is *required* to finish.
        chaos = ChaosMonkey(kill_at=[2, 9], state_dir=str(tmp_path / "chaos"))
        result = make_campaign().run(N_TRIALS, seed=SEED, n_jobs=2, chaos=chaos)
        assert_identical(result, serial_baseline)
        assert result.stats.worker_deaths >= 2
        assert result.stats.respawns >= 1
        assert not result.stats.serial_fallback

    def test_undisturbed_run_reports_no_harness_events(self, serial_baseline):
        result = make_campaign().run(N_TRIALS, seed=SEED, n_jobs=2)
        assert_identical(result, serial_baseline)
        stats = result.stats
        assert stats.harness_events == 0
        assert "deaths" not in stats.progress_line()


@needs_fork
class TestHungWorker:
    def test_hang_killed_and_retried(self, serial_baseline, tmp_path):
        # The sleep dwarfs any chunk deadline (1s/trial x chunk <= 12s... use
        # a sleep far past it); the retry skips the sleep (fire-once marker).
        chaos = ChaosMonkey(
            hang_at={6: 60.0}, state_dir=str(tmp_path / "chaos")
        )
        result = make_campaign().run(
            N_TRIALS, seed=SEED, n_jobs=2, trial_timeout=1.0, chaos=chaos
        )
        assert_identical(result, serial_baseline)
        stats = result.stats
        assert stats.hangs >= 1
        assert stats.worker_deaths >= 1


@needs_fork
class TestQuarantine:
    def test_poison_trial_quarantined(self, serial_baseline, tmp_path):
        # once=False: every attempt dies -> quarantine after max_retries.
        chaos = ChaosMonkey(
            kill_at=[9], once=False, state_dir=str(tmp_path / "chaos")
        )
        result = make_campaign().run(
            N_TRIALS, seed=SEED, n_jobs=2, max_retries=1, chaos=chaos
        )
        poisoned = result.records[9]
        assert poisoned.outcome is Outcome.TRIAL_FAILURE
        assert isinstance(poisoned.failure, TrialFailure)
        assert poisoned.failure.reason == "crash"
        assert poisoned.failure.attempts == 2  # initial + max_retries
        assert result.stats.quarantined == 1
        assert result.counts.counts[Outcome.TRIAL_FAILURE] == 1
        # Every other trial is untouched by the poison.
        keys = [record_key(r) for r in result.records]
        assert [k for i, k in enumerate(keys) if i != 9] == [
            k for i, k in enumerate(serial_baseline) if i != 9
        ]

    def test_quarantined_record_round_trips_via_checkpoint(self, tmp_path):
        chaos = ChaosMonkey(
            kill_at=[3], once=False, state_dir=str(tmp_path / "chaos")
        )
        path = str(tmp_path / "ck.jsonl")
        first = make_campaign().run(
            N_TRIALS, seed=SEED, n_jobs=2, max_retries=0,
            checkpoint_path=path, chaos=chaos,
        )
        assert first.records[3].outcome is Outcome.TRIAL_FAILURE
        resumed = make_campaign().run(N_TRIALS, seed=SEED, checkpoint_path=path)
        assert resumed.stats.resumed == N_TRIALS
        restored = resumed.records[3]
        assert restored.outcome is Outcome.TRIAL_FAILURE
        assert restored.failure.reason == first.records[3].failure.reason
        assert restored.failure.attempts == first.records[3].failure.attempts


@needs_fork
class TestPoolCollapse:
    def test_respawn_budget_exhausted_falls_back_to_serial(
        self, serial_baseline, tmp_path
    ):
        # Both workers die, zero respawns allowed: the pool collapses and
        # the campaign must finish in-process with identical results.
        policy = SupervisorPolicy(max_respawns=0)
        chaos = ChaosMonkey(kill_at=[2, 9], state_dir=str(tmp_path / "chaos"))
        result = make_campaign().run(
            N_TRIALS, seed=SEED, n_jobs=2, supervision=policy, chaos=chaos
        )
        assert_identical(result, serial_baseline)
        assert result.stats.serial_fallback
        assert result.stats.worker_deaths == 2

    def test_serial_policy_collapses_on_first_failure(
        self, serial_baseline, tmp_path
    ):
        chaos = ChaosMonkey(kill_at=[4], state_dir=str(tmp_path / "chaos"))
        result = make_campaign().run(
            N_TRIALS, seed=SEED, n_jobs=2, on_worker_failure="serial", chaos=chaos
        )
        assert_identical(result, serial_baseline)
        assert result.stats.serial_fallback
        assert result.stats.respawns == 0


@needs_fork
class TestAbortPolicy:
    def test_abort_raises(self, tmp_path):
        from repro.faults import WorkerFailureError

        chaos = ChaosMonkey(kill_at=[5], state_dir=str(tmp_path / "chaos"))
        with pytest.raises(WorkerFailureError):
            make_campaign().run(
                N_TRIALS, seed=SEED, n_jobs=2, on_worker_failure="abort", chaos=chaos
            )


class TestCheckpointCorruption:
    def _checkpointed_run(self, tmp_path, **kwargs):
        path = str(tmp_path / "ck.jsonl")
        result = make_campaign().run(
            N_TRIALS, seed=SEED, checkpoint_path=path, **kwargs
        )
        return path, result

    def test_garbled_line_detected_and_rerun(self, serial_baseline, tmp_path):
        path, _ = self._checkpointed_run(tmp_path)
        corrupt_checkpoint(path, mode="garble", line=4)
        campaign = make_campaign()
        with pytest.warns(CheckpointWarning, match="corrupted"):
            resumed = campaign.run(N_TRIALS, seed=SEED, checkpoint_path=path)
        assert_identical(resumed, serial_baseline)
        assert resumed.stats.resumed == N_TRIALS - 1

    def test_truncated_tail_dropped_and_rerun(self, serial_baseline, tmp_path):
        path, _ = self._checkpointed_run(tmp_path)
        corrupt_checkpoint(path, mode="truncate", line=-1)
        with pytest.warns(CheckpointWarning, match="torn"):
            resumed = make_campaign().run(N_TRIALS, seed=SEED, checkpoint_path=path)
        assert_identical(resumed, serial_baseline)
        assert resumed.stats.resumed == N_TRIALS - 1

    def test_garble_then_truncate_still_identical(self, serial_baseline, tmp_path):
        path, _ = self._checkpointed_run(tmp_path)
        corrupt_checkpoint(path, mode="garble", line=5)
        corrupt_checkpoint(path, mode="truncate", line=-1)
        with pytest.warns(CheckpointWarning):
            resumed = make_campaign().run(N_TRIALS, seed=SEED, checkpoint_path=path)
        assert_identical(resumed, serial_baseline)
        assert resumed.stats.resumed == N_TRIALS - 2

    def test_torn_header_discarded_and_rerun(self, serial_baseline, tmp_path):
        # Crash mid-write of the header itself (the stats-bearing line 0),
        # record lines intact: the whole file must be discarded — records
        # can't be trusted against an unverifiable fingerprint — and the
        # campaign re-runs from scratch, bit-identically.
        path, _ = self._checkpointed_run(tmp_path)
        with open(path) as fh:
            lines = fh.read().splitlines()
        lines[0] = lines[0][: len(lines[0]) // 2]
        with open(path, "w") as fh:
            fh.write("\n".join(lines) + "\n")
        with pytest.warns(CheckpointWarning, match="unreadable header"):
            resumed = make_campaign().run(N_TRIALS, seed=SEED, checkpoint_path=path)
        assert_identical(resumed, serial_baseline)
        assert resumed.stats.resumed == 0

    def test_garbled_header_discarded_and_rerun(self, serial_baseline, tmp_path):
        # A silent bit-flip inside the header (CRC mismatch, still valid
        # JSON) is treated exactly like a torn one.
        path, _ = self._checkpointed_run(tmp_path)
        corrupt_checkpoint(path, mode="garble", line=0)
        with pytest.warns(CheckpointWarning, match="unreadable header"):
            resumed = make_campaign().run(N_TRIALS, seed=SEED, checkpoint_path=path)
        assert_identical(resumed, serial_baseline)
        assert resumed.stats.resumed == 0

    def test_header_only_truncation(self, serial_baseline, tmp_path):
        path, _ = self._checkpointed_run(tmp_path)
        corrupt_checkpoint(path, mode="truncate", line=0)  # drops records too
        with pytest.warns(CheckpointWarning, match="unreadable header"):
            resumed = make_campaign().run(N_TRIALS, seed=SEED, checkpoint_path=path)
        assert_identical(resumed, serial_baseline)
        assert resumed.stats.resumed == 0

    def test_strict_resume_raises_on_torn_header(self, tmp_path):
        path, _ = self._checkpointed_run(tmp_path)
        corrupt_checkpoint(path, mode="garble", line=0)
        with pytest.raises(CheckpointMismatchError, match="unreadable header"):
            make_campaign().run(
                N_TRIALS, seed=SEED, checkpoint_path=path, strict_resume=True
            )

    def test_strict_resume_raises_on_mismatch(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        with open(path, "w") as fh:
            fh.write(json.dumps({"version": 1, "fingerprint": "stale"}) + "\n")
        with pytest.raises(CheckpointMismatchError):
            make_campaign().run(
                N_TRIALS, seed=SEED, checkpoint_path=path, strict_resume=True
            )

    def test_resume_rewrite_cleans_corruption(self, tmp_path):
        # After a resume, the rewritten checkpoint no longer contains the
        # corrupted line (atomic rewrite drops what load() skipped).
        path, _ = self._checkpointed_run(tmp_path)
        corrupt_checkpoint(path, mode="garble", line=3)
        campaign = make_campaign()
        with pytest.warns(CheckpointWarning):
            campaign.run(N_TRIALS, seed=SEED, checkpoint_path=path)
        fingerprint = campaign_fingerprint(make_campaign(), N_TRIALS, SEED)
        report = verify_checkpoint(path, fingerprint=fingerprint)
        assert report["corrupted_lines"] == 0
        assert report["recoverable"] == N_TRIALS
        assert report["lost"] == 0


class TestVerifyCheckpoint:
    def test_reports_recoverable_and_lost(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        make_campaign().run(N_TRIALS, seed=SEED, checkpoint_path=path)
        corrupt_checkpoint(path, mode="garble", line=2)
        fingerprint = campaign_fingerprint(make_campaign(), N_TRIALS, SEED)
        report = verify_checkpoint(
            path, fingerprint=fingerprint, n_trials=N_TRIALS, seed=SEED
        )
        assert report["header_ok"]
        assert report["fingerprint_ok"]
        assert report["corrupted_lines"] == 1
        assert report["recoverable"] == N_TRIALS - 1
        assert report["lost"] == 1

    def test_flags_foreign_fingerprint(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        make_campaign().run(N_TRIALS, seed=SEED, checkpoint_path=path)
        report = verify_checkpoint(path, fingerprint="somebody-else")
        assert report["header_ok"]
        assert report["fingerprint_ok"] is False

    def test_missing_file(self, tmp_path):
        report = verify_checkpoint(str(tmp_path / "absent.jsonl"))
        assert not report["exists"]
        assert report["error"]

    def test_reports_unreadable_header(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        make_campaign().run(N_TRIALS, seed=SEED, checkpoint_path=path)
        corrupt_checkpoint(path, mode="garble", line=0)
        report = verify_checkpoint(path)
        assert "unreadable header" in report["error"]


class TestInterruptResumability:
    def test_keyboard_interrupt_flushes_checkpoint(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        stop_after = 7

        def interrupter(index, record):
            if index == stop_after:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            make_campaign().run(
                N_TRIALS, seed=SEED, checkpoint_path=path, on_trial=interrupter
            )
        # Every delivered record — including any still in the write buffer
        # at interrupt time — must be on disk and CRC-clean.
        report = verify_checkpoint(path)
        assert report["header_ok"]
        assert report["corrupted_lines"] == 0
        assert report["recoverable"] == stop_after + 1
        resumed = make_campaign().run(N_TRIALS, seed=SEED, checkpoint_path=path)
        assert resumed.stats.resumed == stop_after + 1
        serial = make_campaign().run(N_TRIALS, seed=SEED)
        assert [record_key(r) for r in resumed.records] == [
            record_key(r) for r in serial.records
        ]


class TestChaosSpec:
    def test_parse_kill_and_hang(self, tmp_path):
        monkey = parse_chaos_spec("kill@5,hang@9:2.5", state_dir=str(tmp_path))
        assert monkey.kill_at == frozenset([5])
        assert monkey.hang_at == {9: 2.5}
        assert monkey.once

    def test_parse_poison(self, tmp_path):
        monkey = parse_chaos_spec("kill@3!", state_dir=str(tmp_path))
        assert monkey.kill_at == frozenset([3])
        assert not monkey.once

    def test_parse_rejects_garbage(self, tmp_path):
        with pytest.raises(ValueError, match="bad chaos event"):
            parse_chaos_spec("explode@7", state_dir=str(tmp_path))

    def test_unarmed_monkey_is_inert(self, tmp_path):
        monkey = ChaosMonkey(kill_at=[0], state_dir=str(tmp_path))
        monkey.before_trial(0)  # parent process: must not exit

    def test_fire_once_is_cross_process(self, tmp_path):
        monkey = ChaosMonkey(hang_at={4: 0.0}, state_dir=str(tmp_path))
        monkey.arm()
        assert monkey._fire_once("hang", 4)
        clone = ChaosMonkey(hang_at={4: 0.0}, state_dir=str(tmp_path))
        clone.arm()
        assert not clone._fire_once("hang", 4)
