"""Tests for the extended pipeline passes: instsimplify and local CSE."""

import pytest

from repro import compile_source
from repro.interp import run_module
from repro.ir import (
    F64,
    I64,
    IRBuilder,
    Module,
    const_float,
    const_int,
    verify_module,
)
from repro.passes import (
    cse_module,
    extended_pipeline,
    instsimplify_module,
    optimize_module,
    simplify_instruction,
)


def make_fn(ret_type=I64, params=(I64,), names=("x",)):
    m = Module("t")
    fn = m.add_function("f", ret_type, list(params), list(names))
    b = IRBuilder(fn.add_block("entry"))
    return m, fn, b


class TestInstSimplify:
    def test_add_zero(self):
        m, fn, b = make_fn()
        v = b.add(fn.args[0], const_int(0))
        assert simplify_instruction(v) is fn.args[0]

    def test_mul_one_and_zero(self):
        m, fn, b = make_fn()
        one = b.mul(fn.args[0], const_int(1))
        zero = b.mul(fn.args[0], const_int(0))
        assert simplify_instruction(one) is fn.args[0]
        folded = simplify_instruction(zero)
        assert folded.value == 0

    def test_sub_self_is_zero(self):
        m, fn, b = make_fn()
        v = b.sub(fn.args[0], fn.args[0])
        assert simplify_instruction(v).value == 0

    def test_xor_self_and_zero(self):
        m, fn, b = make_fn()
        self_xor = b.xor(fn.args[0], fn.args[0])
        zero_xor = b.xor(fn.args[0], const_int(0))
        assert simplify_instruction(self_xor).value == 0
        assert simplify_instruction(zero_xor) is fn.args[0]

    def test_shift_by_zero(self):
        m, fn, b = make_fn()
        v = b.shl(fn.args[0], const_int(0))
        assert simplify_instruction(v) is fn.args[0]

    def test_float_add_zero_not_simplified(self):
        # fadd x, 0.0 changes -0.0; must be preserved.
        m, fn, b = make_fn(F64, (F64,), ("x",))
        v = b.fadd(fn.args[0], const_float(0.0))
        assert simplify_instruction(v) is None

    def test_float_mul_zero_not_simplified(self):
        # x * 0.0 is NaN for x = inf; must be preserved.
        m, fn, b = make_fn(F64, (F64,), ("x",))
        v = b.fmul(fn.args[0], const_float(0.0))
        assert simplify_instruction(v) is None

    def test_float_mul_one_simplified(self):
        m, fn, b = make_fn(F64, (F64,), ("x",))
        v = b.fmul(fn.args[0], const_float(1.0))
        assert simplify_instruction(v) is fn.args[0]

    def test_select_same_arms(self):
        m, fn, b = make_fn()
        cond = b.icmp("eq", fn.args[0], const_int(0))
        v = b.select(cond, fn.args[0], fn.args[0])
        assert simplify_instruction(v) is fn.args[0]

    def test_module_pass_rewrites(self):
        m, fn, b = make_fn()
        v = b.add(fn.args[0], const_int(0))
        w = b.mul(v, const_int(1))
        b.ret(w)
        assert instsimplify_module(m)
        verify_module(m)
        assert fn.instruction_count == 1  # only the ret remains


class TestCSE:
    def test_duplicate_binops_merged(self):
        m, fn, b = make_fn()
        a1 = b.mul(fn.args[0], const_int(3))
        a2 = b.mul(fn.args[0], const_int(3))
        s = b.add(a1, a2)
        b.ret(s)
        assert cse_module(m)
        verify_module(m)
        assert s.operands[0] is s.operands[1]

    def test_commutative_canonicalization(self):
        m, fn, b = make_fn(I64, (I64, I64), ("x", "y"))
        a1 = b.add(fn.args[0], fn.args[1])
        a2 = b.add(fn.args[1], fn.args[0])
        s = b.mul(a1, a2)
        b.ret(s)
        assert cse_module(m)
        assert s.operands[0] is s.operands[1]

    def test_noncommutative_not_merged(self):
        m, fn, b = make_fn(I64, (I64, I64), ("x", "y"))
        a1 = b.sub(fn.args[0], fn.args[1])
        a2 = b.sub(fn.args[1], fn.args[0])
        s = b.mul(a1, a2)
        b.ret(s)
        assert not cse_module(m)

    def test_redundant_loads_merged(self):
        from repro.ir import ArrayType

        m = Module("t")
        g = m.add_global("data", ArrayType(I64, 4))
        fn = m.add_function("f", I64, [])
        b = IRBuilder(fn.add_block("entry"))
        p1 = b.gep(g, const_int(1))
        l1 = b.load(p1)
        p2 = b.gep(g, const_int(1))
        l2 = b.load(p2)
        s = b.add(l1, l2)
        b.ret(s)
        assert cse_module(m)
        verify_module(m)
        assert s.operands[0] is s.operands[1]

    def test_store_invalidates_loads(self):
        from repro.ir import ArrayType

        m = Module("t")
        g = m.add_global("data", ArrayType(I64, 4))
        fn = m.add_function("f", I64, [I64], ["x"])
        b = IRBuilder(fn.add_block("entry"))
        p = b.gep(g, const_int(0))
        l1 = b.load(p)
        b.store(fn.args[0], p)
        l2 = b.load(p)  # must NOT merge with l1 across the store
        s = b.add(l1, l2)
        b.ret(s)
        cse_module(m)
        verify_module(m)
        assert s.operands[0] is not s.operands[1]

    def test_call_invalidates_loads(self):
        from repro.ir import ArrayType

        m = Module("t")
        g = m.add_global("data", ArrayType(F64, 4))
        fn = m.add_function("f", F64, [])
        b = IRBuilder(fn.add_block("entry"))
        p = b.gep(g, const_int(0))
        l1 = b.load(p)
        b.call_intrinsic("print_f64", [l1])
        l2 = b.load(p)
        s = b.fadd(l1, l2)
        b.ret(s)
        cse_module(m)
        assert s.operands[0] is not s.operands[1]


class TestExtendedPipeline:
    SOURCE = """
    int n = 6;
    output double result[1];
    void main() {
        double buf[8];
        double acc = 0.0;
        for (int i = 0; i < n; i = i + 1) {
            buf[i] = (double)(i * 1) + 0.5;       // i * 1 simplifies
            acc = acc + buf[i] * buf[i];           // repeated address math
        }
        result[0] = acc;
    }
    """

    def test_extended_preserves_semantics(self):
        standard = compile_source(self.SOURCE)
        extended = compile_source(self.SOURCE)
        optimize_module(extended, extended=True)
        r1, i1 = run_module(standard)
        r2, i2 = run_module(extended)
        assert r1.status == r2.status == "ok"
        assert i1.read_global("result") == i2.read_global("result")

    def test_extended_not_larger(self):
        standard = compile_source(self.SOURCE)
        extended = compile_source(self.SOURCE)
        optimize_module(extended, extended=True)
        assert extended.static_instruction_count <= standard.static_instruction_count

    def test_extended_pipeline_has_extra_passes(self):
        pm = extended_pipeline()
        names = [name for name, _ in pm._passes]
        assert "instsimplify" in names and "cse" in names
