"""Tests for the pluggable fault-model registry.

The contracts under test, per model: spec grammar (eager, bad token
named), deterministic trial plans (jobs=1 == jobs=N == serial resume),
the default model's byte-identity with the historical engine, checkpoint
model tagging (refusal on mismatch, legacy files resume as
transient-1bit), multi-shot recovery fail-stop, warm-start planning
against the first possible firing, sanitizer scoping, heatmap tagging,
and the cross-model experiments driver.
"""

import json
import warnings

import pytest

from repro.faults import (
    Campaign,
    CheckpointMismatchError,
    FaultSite,
    Outcome,
    campaign_fingerprint,
    result_bits,
)
from repro.faults.models import (
    DEFAULT_FAULT_MODEL,
    FAULT_MODELS,
    FaultModel,
    Intermittent,
    Persistent,
    PlannedFault,
    Transient1Bit,
    get_fault_model,
    make_corrupter,
    parse_fault_model_spec,
    validate_fault_model_spec,
)
from repro.faults.parallel import run_campaign
from repro.ir import (
    ArrayType,
    F64,
    I64,
    IRBuilder,
    Module,
    const_float,
    const_int,
    verify_module,
)
from repro.recover import RecoveryPolicy
from repro.workloads import get_workload

MODEL_SPECS = (
    "transient-1bit",
    "transient-multibit:k=3",
    "transient-multibit:k=2,adjacent=0",
    "pattern:kind=stuck1",
    "pattern:kind=zero",
    "intermittent:p=0.7,window=6",
    "persistent",
)


def make_campaign(model=None, workload="fft", module=None, **kwargs):
    w = get_workload(workload)
    return Campaign(
        w.make_interpreter(1, module=module),
        verifier=w.verifier(),
        entry=w.entry,
        budget_factor=w.budget_factor,
        fault_model=model,
        **kwargs,
    )


def record_key(record):
    return (
        record.site.instruction.opcode,
        record.site.occurrence,
        record.site.bit,
        record.outcome,
        record.status,
        record.cycles,
    )


def run_keys(model, trials=20, seed=3, n_jobs=1, **kwargs):
    campaign = make_campaign(model, **kwargs)
    result = run_campaign(campaign, trials, seed=seed, n_jobs=n_jobs)
    return [record_key(r) for r in result.records], campaign, result


# -- result_bits (satellite: clear error on unexpected types) ------------------


class TestResultBits:
    def _insts(self):
        m = Module("t")
        g = m.add_global("data", ArrayType(F64, 4))
        fn = m.add_function("main", F64, [])
        b = IRBuilder(fn.add_block("entry"))
        add = b.add(const_int(1), const_int(2))
        fadd = b.fadd(const_float(1.0), const_float(2.0))
        gep = b.gep(g, add)
        cmp = b.icmp("eq", add, add)
        b.ret(fadd)
        verify_module(m)
        return add, fadd, gep, cmp

    def test_widths(self):
        add, fadd, gep, cmp = self._insts()
        assert result_bits(add) == 64          # i64
        assert result_bits(fadd) == 64         # f64 IEEE image
        assert result_bits(gep) == 64          # pointers are 64-bit
        assert result_bits(cmp) == 1           # i1

    def test_unexpected_type_raises_clear_typeerror(self):
        add, _fadd, _gep, _cmp = self._insts()

        class WeirdType:
            def is_pointer(self):
                return False

            def is_float(self):
                return False

            def is_integer(self):
                return False

        original = add.type
        try:
            add.type = WeirdType()
            with pytest.raises(TypeError, match="no register representation"):
                result_bits(add)
        finally:
            add.type = original

    def test_sized_but_zero_bits_raises(self):
        add, _fadd, _gep, _cmp = self._insts()

        class ZeroBitInt:
            bits = 0

            def is_pointer(self):
                return False

            def is_float(self):
                return False

            def is_integer(self):
                return True

        original = add.type
        try:
            add.type = ZeroBitInt()
            with pytest.raises(TypeError, match="no register representation"):
                result_bits(add)
        finally:
            add.type = original


# -- spec grammar --------------------------------------------------------------


class TestSpecGrammar:
    def test_registry_contents(self):
        assert list(FAULT_MODELS) == [
            "transient-1bit", "transient-multibit", "pattern",
            "intermittent", "persistent",
        ]
        assert DEFAULT_FAULT_MODEL == "transient-1bit"

    def test_round_trip_specs(self):
        for spec in MODEL_SPECS:
            model = parse_fault_model_spec(spec)
            assert isinstance(model, FaultModel)
            # the canonical spec re-parses to an identical signature
            again = parse_fault_model_spec(model.spec())
            assert again.signature() == model.signature()

    def test_validate_returns_spec_unchanged(self):
        assert validate_fault_model_spec("pattern:kind=max") == "pattern:kind=max"

    def test_unknown_model_names_token(self):
        with pytest.raises(ValueError, match="unknown fault model 'chaos'"):
            validate_fault_model_spec("chaos")

    def test_unknown_parameter_names_token(self):
        with pytest.raises(ValueError, match="bad fault-model parameter 'boom=1'"):
            validate_fault_model_spec("persistent:boom=1")

    def test_unparseable_value_names_token(self):
        with pytest.raises(ValueError, match="bad fault-model parameter 'k=lots'"):
            validate_fault_model_spec("transient-multibit:k=lots")

    def test_range_validation(self):
        with pytest.raises(ValueError, match="k must be >= 1"):
            parse_fault_model_spec("transient-multibit:k=0")
        with pytest.raises(ValueError, match=r"p must be in \(0, 1\]"):
            parse_fault_model_spec("intermittent:p=1.5")
        with pytest.raises(ValueError, match="window must be >= 1"):
            parse_fault_model_spec("intermittent:window=0")
        with pytest.raises(ValueError, match="unknown kind"):
            parse_fault_model_spec("pattern:kind=sparkle")

    def test_get_fault_model_dispatch(self):
        assert isinstance(get_fault_model(None), Transient1Bit)
        assert isinstance(get_fault_model("persistent"), Persistent)
        model = Intermittent(p=0.25)
        assert get_fault_model(model) is model
        with pytest.raises(TypeError, match="fault_model must be"):
            get_fault_model(42)

    def test_signatures_distinguish_parameters(self):
        a = parse_fault_model_spec("transient-multibit:k=2")
        b = parse_fault_model_spec("transient-multibit:k=3")
        assert a.signature() != b.signature()
        assert Transient1Bit().signature() == ""  # legacy fingerprints


# -- corruption application ----------------------------------------------------


class TestCorrupters:
    def _float_inst(self):
        m = Module("t")
        fn = m.add_function("main", F64, [])
        b = IRBuilder(fn.add_block("entry"))
        fadd = b.fadd(const_float(1.0), const_float(2.0))
        b.ret(fadd)
        return fadd

    def _int_insts(self):
        m = Module("t")
        fn = m.add_function("main", I64, [])
        b = IRBuilder(fn.add_block("entry"))
        add = b.add(const_int(1), const_int(2))
        cmp = b.icmp("eq", add, add)
        b.ret(add)
        return add, cmp

    def test_float_xor_is_bit_flip(self):
        import struct

        fadd = self._float_inst()
        corrupt = make_corrupter(fadd, lambda u, w: u ^ (1 << 52))
        image = struct.unpack("<Q", struct.pack("<d", 1.5))[0]
        expected = struct.unpack("<d", struct.pack("<Q", image ^ (1 << 52)))[0]
        assert corrupt(1.5) == expected

    def test_int_wraps_twos_complement(self):
        add, _ = self._int_insts()
        corrupt = make_corrupter(add, lambda u, w: u ^ (1 << 63))
        assert corrupt(0) == -(1 << 63)
        assert corrupt(-(1 << 63)) == 0

    def test_bool_stays_bool(self):
        _, cmp = self._int_insts()
        corrupt = make_corrupter(cmp, lambda u, w: u ^ 1)
        assert corrupt(True) is False
        assert corrupt(False) is True

    def test_zero_overwrite(self):
        fadd = self._float_inst()
        corrupt = make_corrupter(fadd, lambda u, w: 0)
        assert corrupt(123.456) == 0.0


# -- determinism: jobs=1 == jobs=N == resume -----------------------------------


class TestDeterminism:
    @pytest.mark.parametrize("spec", MODEL_SPECS)
    def test_jobs1_equals_jobs2(self, spec):
        serial, _, _ = run_keys(spec, n_jobs=1)
        sharded, _, _ = run_keys(spec, n_jobs=2)
        assert serial == sharded

    @pytest.mark.parametrize(
        "spec", ["transient-multibit:k=3", "intermittent:p=0.7,window=6", "persistent"]
    )
    def test_serial_resume_identity(self, spec, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        full, _, _ = run_keys(spec, trials=16)

        calls = []
        campaign = make_campaign(spec)

        def interrupt(i, record):
            calls.append(i)
            if len(calls) == 6:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_campaign(
                campaign, 16, seed=3, n_jobs=1,
                checkpoint_path=path, on_trial=interrupt,
            )
        resumed = run_campaign(
            make_campaign(spec), 16, seed=3, n_jobs=1, checkpoint_path=path
        )
        assert [record_key(r) for r in resumed.records] == full
        assert resumed.stats.resumed >= 1

    def test_default_model_matches_explicit(self):
        default, c_default, _ = run_keys(None)
        explicit, c_explicit, _ = run_keys("transient-1bit")
        assert default == explicit
        assert (
            campaign_fingerprint(c_default, 20, 3)
            == campaign_fingerprint(c_explicit, 20, 3)
        )

    def test_nondefault_models_change_fingerprint(self):
        _, base, _ = run_keys(None, trials=4)
        seen = {campaign_fingerprint(base, 4, 3)}
        for spec in ("transient-multibit:k=3", "pattern:kind=zero", "persistent"):
            _, campaign, _ = run_keys(spec, trials=4)
            fp = campaign_fingerprint(campaign, 4, 3)
            assert fp not in seen, f"{spec} collided"
            seen.add(fp)

    def test_plans_regenerate_identically(self):
        for spec in ("transient-multibit:k=2,adjacent=0", "intermittent:p=0.5"):
            a = make_campaign(spec)
            b = make_campaign(spec)
            plan_a = a.sample_trials(12, seed=9)
            plan_b = b.sample_trials(12, seed=9)
            for sa, sb in zip(plan_a, plan_b):
                assert sa.instruction.opcode == sb.instruction.opcode
                assert (sa.occurrence, sa.bit) == (sb.occurrence, sb.bit)
                assert getattr(sa, "detail", None) == getattr(sb, "detail", None)


# -- checkpoint model tagging --------------------------------------------------


class TestCheckpointModelTag:
    def _checkpointed_run(self, spec, path, trials=10):
        campaign = make_campaign(spec)
        return run_campaign(
            campaign, trials, seed=3, n_jobs=1, checkpoint_path=str(path)
        )

    def test_header_carries_model(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        self._checkpointed_run("persistent", path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["model"] == "persistent"

    def test_default_model_header_tag(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        self._checkpointed_run(None, path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["model"] == "transient-1bit"

    def test_resume_under_different_model_refuses(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        self._checkpointed_run(None, path)  # transient-1bit checkpoint
        with pytest.raises(CheckpointMismatchError, match="fault-model mismatch"):
            self._checkpointed_run("persistent", path)

    def test_refusal_names_both_models(self, tmp_path):
        path = tmp_path / "ckpt.jsonl"
        self._checkpointed_run("pattern:kind=zero", path)
        with pytest.raises(CheckpointMismatchError) as excinfo:
            self._checkpointed_run("intermittent:p=0.5,window=8", path)
        message = str(excinfo.value)
        assert "pattern:kind=zero" in message
        assert "intermittent" in message
        assert "fresh checkpoint path" in message

    def test_legacy_untagged_checkpoint_resumes_as_transient_1bit(self, tmp_path):
        from repro.faults.parallel import sealed_line

        path = tmp_path / "ckpt.jsonl"
        full = self._checkpointed_run(None, path, trials=12)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        del header["model"]
        del header["crc"]
        # a legacy file: valid CRC, no model key, some trials missing
        path.write_text("\n".join([sealed_line(header)] + lines[1:8]) + "\n")
        resumed = self._checkpointed_run(None, path, trials=12)
        assert [record_key(r) for r in resumed.records] == [
            record_key(r) for r in full.records
        ]
        assert resumed.stats.resumed >= 1

    def test_legacy_untagged_checkpoint_refused_by_other_model(self, tmp_path):
        from repro.faults.parallel import sealed_line

        path = tmp_path / "ckpt.jsonl"
        self._checkpointed_run(None, path)
        lines = path.read_text().splitlines()
        header = {
            k: v
            for k, v in json.loads(lines[0]).items()
            if k not in ("crc", "model")
        }
        path.write_text("\n".join([sealed_line(header)] + lines[1:]) + "\n")
        with pytest.raises(CheckpointMismatchError, match="transient-1bit"):
            self._checkpointed_run("persistent", path)


# -- multi-shot semantics ------------------------------------------------------


class TestMultiShot:
    def _protected_module(self, workload="fft"):
        from repro.protect import FullDuplicationSelector, duplicate_instructions

        w = get_workload(workload)
        module = w.compile()
        duplicate_instructions(module, FullDuplicationSelector().select(module))
        return module

    def test_multi_shot_flags(self):
        assert not Transient1Bit.multi_shot
        assert not FAULT_MODELS["transient-multibit"].multi_shot
        assert not FAULT_MODELS["pattern"].multi_shot
        assert Intermittent.multi_shot
        assert Persistent.multi_shot

    @pytest.mark.parametrize("spec", ["persistent", "intermittent:p=0.9,window=4"])
    def test_recovery_never_corrects_multi_shot(self, spec):
        module = self._protected_module()
        campaign = make_campaign(
            spec, module=module, recovery=RecoveryPolicy(max_rollbacks=4)
        )
        result = run_campaign(campaign, 30, seed=5, n_jobs=1)
        counts = result.counts.counts
        assert counts[Outcome.CORRECTED] == 0, counts
        # faults still land and checks still fire as plain detections
        assert counts[Outcome.DETECTED] >= 1, counts

    def test_single_shot_models_still_correct(self):
        module = self._protected_module()
        campaign = make_campaign(
            "transient-multibit:k=2",
            module=module,
            recovery=RecoveryPolicy(max_rollbacks=4),
        )
        result = run_campaign(campaign, 40, seed=5, n_jobs=1)
        assert result.counts.counts[Outcome.CORRECTED] >= 1, result.counts

    @pytest.mark.parametrize(
        "spec", ["persistent", "intermittent:p=0.8,window=6", "transient-multibit:k=3"]
    )
    def test_warm_start_matches_cold(self, spec):
        cold, _, _ = run_keys(spec, trials=16)
        warm, _, warm_result = run_keys(spec, trials=16, warm_start=True)
        assert warm == cold
        assert warm_result.stats.warm_restores >= 0  # engine ran the warm path

    def test_persistent_first_occurrence_pins_to_one(self):
        campaign = make_campaign("persistent")
        plan = campaign.sample_trials(8, seed=1)
        model = campaign.fault_model
        for site in plan:
            assert site.occurrence == 1
            assert model.first_occurrence(site) == 1

    def test_intermittent_fire_is_pure_and_windowed(self):
        campaign = make_campaign("intermittent:p=0.5,window=8")
        site = campaign.sample_trials(1, seed=2)[0]
        spec = campaign.fault_model.injection_for(site)
        fired = [k for k in range(1, site.occurrence + 50) if spec.fire(k)]
        assert fired == [k for k in range(1, site.occurrence + 50) if spec.fire(k)]
        for k in fired:
            assert site.occurrence <= k < site.occurrence + 8
        assert all(not spec.fire(k) for k in range(1, site.occurrence))


# -- sanitizer scoping ---------------------------------------------------------


class TestSanitizerScoping:
    def test_covered_flag(self):
        assert Transient1Bit.sanitizer_covered
        for name in ("transient-multibit", "pattern", "intermittent", "persistent"):
            assert not FAULT_MODELS[name].sanitizer_covered

    def test_uncovered_model_skips_sweep(self):
        from repro.analysis.coverage import Verdict
        from repro.faults.sanitizer import sanitize_records

        class FakeSite:
            def __init__(self, inst):
                self.instruction = inst
                self.occurrence = 1
                self.bit = 0

        class FakeRecord:
            def __init__(self, inst):
                self.outcome = Outcome.SOC
                self.site = FakeSite(inst)

        w = get_workload("is")
        from repro.protect import FullDuplicationSelector, duplicate_instructions

        module = w.compile()
        duplicate_instructions(module, FullDuplicationSelector().select(module))
        from repro.analysis.coverage import CoverageAnalysis

        analysis = CoverageAnalysis(module)
        covered = next(
            s.instruction
            for s in analysis.analyze_module().sites
            if s.verdict is not Verdict.ESCAPES
        )
        records = [FakeRecord(covered)]
        # transient-1bit: an SOC at a covered site is a violation
        with pytest.raises(AssertionError):
            sanitize_records(records, module, model=Transient1Bit())
        # persistent: out of the proof's scope, no sweep
        sanitize_records(records, module, model=Persistent())


# -- particles workload --------------------------------------------------------


class TestParticlesWorkload:
    def test_registered(self):
        from repro.workloads.registry import WORKLOAD_CLASSES

        assert "particles" in WORKLOAD_CLASSES

    def test_golden_run_and_verifier(self):
        w = get_workload("particles")
        interp = w.make_interpreter(1)
        result = interp.run("main")
        assert result.status == "ok"
        energy = interp.read_global("out_energy")[0]
        assert energy == energy and energy < 0.0  # bound disk, finite energy
        verifier = w.verifier()
        golden = verifier.capture(interp)
        assert verifier.check(interp, golden)

    def test_long_horizon_input_ladder(self):
        w = get_workload("particles")
        assert w.inputs[4]["param_steps"] >= 1000  # thousands of steps
        assert set(w.inputs) == {1, 2, 3, 4}

    def test_spmd_matches_serial(self):
        w = get_workload("particles")
        interp = w.make_interpreter(1)
        interp.run("main")
        job = w.make_job(2, 1)
        job_result = job.run("main")
        assert job_result.status == "ok"
        for name in ("out_x", "out_y", "out_energy"):
            assert job.interpreters[0].read_global(name) == interp.read_global(name)

    def test_campaign_under_persistent_model(self):
        keys, _, result = run_keys(
            "persistent", trials=10, workload="particles"
        )
        assert len(keys) == 10
        assert result.counts.total == 10


# -- heatmap tagging -----------------------------------------------------------


class TestHeatmapModelTag:
    def test_model_tag_and_per_model_totals(self):
        from repro.obs import build_heatmap

        campaign = make_campaign("persistent")
        result = run_campaign(campaign, 12, seed=3, n_jobs=1)
        heatmap = build_heatmap(
            result.records, campaign.interp.module, model=campaign.fault_model
        )
        assert heatmap["fault_model"] == "persistent"
        assert heatmap["model_outcomes"] == {
            "persistent": heatmap["outcome_totals"]
        }

    def test_default_tag(self):
        from repro.obs import build_heatmap

        campaign = make_campaign(None)
        result = run_campaign(campaign, 8, seed=3, n_jobs=1)
        heatmap = build_heatmap(result.records, campaign.interp.module)
        assert heatmap["fault_model"] == "transient-1bit"


# -- experiments driver --------------------------------------------------------


class TestFaultModelEvaluation:
    def test_sweep_and_table(self):
        from repro.experiments import (
            format_fault_model_table,
            run_fault_model_evaluation,
        )

        result = run_fault_model_evaluation(
            "is", model_specs=["transient-1bit", "persistent"], trials=15, seed=1
        )
        assert [e["spec"] for e in result["models"]] == [
            "transient-1bit", "persistent",
        ]
        for entry in result["models"]:
            assert "unprotected" in entry and "protected" in entry
            assert "sites_gained" in entry and "sites_lost" in entry
        baseline = result["models"][0]
        assert baseline["sites_gained"] == [] and baseline["sites_lost"] == []
        table = format_fault_model_table(result)
        assert "transient-1bit" in table
        assert "persistent" in table
        assert "soc sites" in table


# -- MPI campaign guard --------------------------------------------------------


class TestMpiCampaignGuard:
    def test_non_default_model_refused(self):
        from repro.faults import MpiCampaign

        w = get_workload("is")
        with pytest.raises(NotImplementedError, match="transient-1bit"):
            MpiCampaign(w.make_job(2, 1), fault_model="persistent")

    def test_default_model_accepted(self):
        from repro.faults import MpiCampaign

        w = get_workload("is")
        campaign = MpiCampaign(w.make_job(2, 1))
        assert campaign.fault_model.name == "transient-1bit"
