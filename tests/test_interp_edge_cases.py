"""Edge-case tests for the interpreter: overrides, stack, budgets, output."""

import pytest

from repro import compile_source
from repro.interp import Interpreter, run_module
from repro.ir import (
    ArrayType,
    F64,
    I64,
    IRBuilder,
    Module,
    const_float,
    const_int,
    verify_module,
)


class TestGlobalOverrides:
    SOURCE = """
    int n = 3;
    double scale = 2.0;
    output double result[4];
    void main() {
        for (int i = 0; i < n; i = i + 1) { result[i] = scale; }
    }
    """

    def test_scalar_override(self):
        interp = Interpreter(compile_source(self.SOURCE))
        interp.set_global_override("scale", 7.5)
        interp.run()
        assert interp.read_global("result")[:3] == [7.5] * 3

    def test_array_override(self):
        interp = Interpreter(compile_source(self.SOURCE))
        interp.set_global_override("result", [9.0, 9.0])
        interp.set_global_override("n", 1)
        interp.run()
        # Cell 0 overwritten by the program; cell 1 keeps the override.
        assert interp.read_global("result")[:2] == [2.0, 9.0]

    def test_override_too_long_rejected(self):
        interp = Interpreter(compile_source(self.SOURCE))
        with pytest.raises(ValueError, match="cells"):
            interp.set_global_override("result", [0.0] * 5)

    def test_unknown_global_rejected(self):
        interp = Interpreter(compile_source(self.SOURCE))
        with pytest.raises(KeyError):
            interp.set_global_override("nope", 1)

    def test_clear_overrides(self):
        interp = Interpreter(compile_source(self.SOURCE))
        interp.set_global_override("scale", 5.0)
        interp.clear_global_overrides()
        interp.run()
        assert interp.read_global("result")[0] == 2.0

    def test_read_scalar_global(self):
        interp = Interpreter(compile_source(self.SOURCE))
        interp.run()
        assert interp.read_global("n") == 3
        assert interp.read_global("scale") == 2.0


class TestStackBehaviour:
    def test_stack_exhaustion_traps(self):
        m = Module("t")
        fn = m.add_function("main", I64, [])
        b = IRBuilder(fn.add_block("entry"))
        buf = b.alloca(ArrayType(I64, 100))
        p = b.gep(buf, const_int(0))
        b.ret(b.load(p))
        verify_module(m)
        interp = Interpreter(m, stack_cells=32)  # smaller than the alloca
        result = interp.run()
        assert result.status == "trap"
        assert "stack" in result.error.lower()

    def test_stack_reset_between_calls(self):
        """Allocas are freed on return: repeated calls reuse the frame."""
        source = """
        output double result[1];
        double work(double v) {
            double buf[64];
            buf[0] = v;
            return buf[0] * 2.0;
        }
        void main() {
            double acc = 0.0;
            for (int i = 0; i < 200; i = i + 1) {
                acc = acc + work((double)i);
            }
            result[0] = acc;
        }
        """
        module = compile_source(source)
        interp = Interpreter(module, stack_cells=256)
        result = interp.run()
        assert result.status == "ok"  # 200 x 64 cells only works if freed


class TestBudgets:
    def loop_module(self):
        return compile_source(
            """
            output double result[1];
            int n = 100000000;
            void main() {
                double acc = 0.0;
                for (int i = 0; i < n; i = i + 1) { acc = acc + 1.0; }
                result[0] = acc;
            }
            """
        )

    def test_budget_exceeded_is_hang(self):
        interp = Interpreter(self.loop_module())
        result = interp.run(cycle_budget=50_000)
        assert result.status == "hang"
        assert result.cycles > 50_000

    def test_no_budget_means_effectively_unlimited(self):
        interp = Interpreter(self.loop_module())
        interp.set_global_override("n", 10)
        result = interp.run()
        assert result.status == "ok"

    def test_budget_reset_between_runs(self):
        interp = Interpreter(self.loop_module())
        interp.set_global_override("n", 10)
        assert interp.run(cycle_budget=100).status == "hang"
        assert interp.run().status == "ok"


class TestOutputCollection:
    def test_output_log_disabled(self):
        module = compile_source(
            "void main() { print(1.0); print(2.0); }"
        )
        interp = Interpreter(module, collect_output=False)
        interp.run()
        assert interp.output_log == []

    def test_output_log_reset_per_run(self):
        module = compile_source("void main() { print(1.0); }")
        interp = Interpreter(module)
        interp.run()
        interp.run()
        assert interp.output_log == [1.0]


class TestInjectionValidation:
    def test_occurrence_must_be_positive(self):
        module = compile_source("int main() { return 1 + 2; }", optimize=False)
        inst = next(i for i in module.instructions() if i.opcode == "add")
        interp = Interpreter(module)
        with pytest.raises(ValueError, match="1-based"):
            interp.run(injection=(inst, 0, 3))

    def test_injection_into_uncompiled_instruction_rejected(self):
        from repro.ir import BinaryOperator

        module = compile_source("int main() { return 1; }")
        interp = Interpreter(module)
        dangling = BinaryOperator("add", const_int(1), const_int(2))
        with pytest.raises(KeyError):
            interp.run(injection=(dangling, 1, 0))

    def test_missing_entry_function(self):
        module = compile_source("int main() { return 1; }")
        interp = Interpreter(module)
        with pytest.raises(KeyError):
            interp.run(entry="nonexistent")
