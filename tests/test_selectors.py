"""Tests for the protection selectors (IPAS / baseline / full / none)."""

import numpy as np
import pytest

from repro import compile_source
from repro.features import FeatureExtractor, NUM_FEATURES
from repro.ml import SVC, StandardScaler
from repro.protect import (
    FullDuplicationSelector,
    IpasSelector,
    LearnedSelector,
    NoProtectionSelector,
    Selector,
    ShoestringStyleSelector,
    is_duplicable,
)

KERNEL = """
int n = 8;
output double result[1];
void main() {
    double buf[8];
    double acc = 0.0;
    for (int i = 0; i < n; i = i + 1) {
        buf[i] = (double)i * 0.5;
        acc = acc + buf[i];
    }
    result[0] = acc;
}
"""


class _ConstantModel:
    """Predicts the same class for everything."""

    def __init__(self, label):
        self.label = label

    def predict(self, X):
        return np.full(len(X), self.label, dtype=np.int64)


@pytest.fixture()
def module():
    return compile_source(KERNEL)


class TestBasicSelectors:
    def test_none_selects_nothing(self, module):
        assert NoProtectionSelector().select(module) == []

    def test_full_selects_all_eligible(self, module):
        selected = FullDuplicationSelector().select(module)
        eligible = [i for i in module.instructions() if is_duplicable(i)]
        assert selected == eligible
        assert len(selected) > 0

    def test_eligible_excludes_memory_and_control(self, module):
        for inst in Selector.eligible(module):
            assert inst.opcode not in ("load", "store", "br", "ret", "phi", "call")


class TestLearnedSelectors:
    def test_ipas_selects_positive_predictions(self, module):
        selector = IpasSelector(_ConstantModel(1))
        assert selector.select(module) == Selector.eligible(module)
        selector0 = IpasSelector(_ConstantModel(0))
        assert selector0.select(module) == []

    def test_baseline_selects_negative_predictions(self, module):
        # Shoestring-style: protect predicted NON-symptom (class 0).
        selector = ShoestringStyleSelector(_ConstantModel(0))
        assert selector.select(module) == Selector.eligible(module)
        selector1 = ShoestringStyleSelector(_ConstantModel(1))
        assert selector1.select(module) == []

    def test_with_real_svm_and_scaler(self, module):
        eligible = Selector.eligible(module)
        X = FeatureExtractor(module).extract_many(eligible)
        # Synthetic labels: protect the floating-point instructions.
        y = np.array([1 if i.type.is_float() else 0 for i in eligible])
        scaler = StandardScaler().fit(X)
        model = SVC(C=100.0, gamma=0.1).fit(scaler.transform(X), y)
        selected = IpasSelector(model, scaler).select(module)
        assert selected  # the FP group is learnable from feature 12 etc.
        float_fraction = sum(1 for i in selected if i.type.is_float()) / len(selected)
        assert float_fraction > 0.8

    def test_feature_mask_restricts_columns(self, module):
        eligible = Selector.eligible(module)
        X = FeatureExtractor(module).extract_many(eligible)
        y = np.array([1 if i.opcode == "gep" else 0 for i in eligible])
        mask = np.arange(12)  # instruction-category features only
        scaler = StandardScaler().fit(X[:, mask])
        model = SVC(C=100.0, gamma=0.5).fit(scaler.transform(X[:, mask]), y)
        selector = LearnedSelector(
            model, scaler, protect_positive=True, feature_mask=mask
        )
        selected = selector.select(module)
        assert all(i.opcode == "gep" for i in selected)
        assert selected

    def test_selector_names(self):
        assert IpasSelector(_ConstantModel(1)).name == "ipas"
        assert ShoestringStyleSelector(_ConstantModel(0)).name == "baseline"
        assert FullDuplicationSelector().name == "full-duplication"
        assert NoProtectionSelector().name == "unprotected"

    def test_empty_module(self):
        from repro.ir import Module

        empty = Module("empty")
        assert IpasSelector(_ConstantModel(1)).select(empty) == []
