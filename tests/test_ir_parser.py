"""Tests for the textual IR parser (print → parse → print round trips)."""

import pytest

from repro import compile_source
from repro.interp import run_module
from repro.ir import (
    ArrayType,
    F64,
    I1,
    I64,
    IRParseError,
    PointerType,
    parse_module,
    parse_type,
    print_module,
    verify_module,
)
from repro.protect import FullDuplicationSelector, duplicate_instructions
from repro.workloads import all_workloads


class TestParseType:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("i64", I64),
            ("i1", I1),
            ("f64", F64),
            ("f64*", PointerType(F64)),
            ("[4 x i64]", ArrayType(I64, 4)),
            ("[ 10 x f64 ]", ArrayType(F64, 10)),
        ],
    )
    def test_valid(self, text, expected):
        assert parse_type(text) == expected

    @pytest.mark.parametrize("text", ["i7", "float", "[x i64]", "[3 x]", ""])
    def test_invalid(self, text):
        with pytest.raises(IRParseError):
            parse_type(text)


class TestRoundTrips:
    SIMPLE = """
    ; module demo
    @data = global [4 x f64] init [1.0, 2.0] output
    declare f64 @sqrt(f64)

    define f64 @main() {
    entry:
      %p = gep f64* @data, i64 1
      %v = load f64, f64* %p
      %s = call f64 @sqrt(f64 %v)
      ret f64 %s
    }
    """

    def test_hand_written_parses_and_runs(self):
        module = parse_module(self.SIMPLE)
        verify_module(module)
        assert module.name == "demo"
        result, interp = run_module(module)
        assert result.status == "ok"
        assert result.value == pytest.approx(2.0**0.5)

    def test_round_trip_is_fixpoint(self):
        module = parse_module(self.SIMPLE)
        text = print_module(module)
        again = parse_module(text)
        assert print_module(again) == text

    @pytest.mark.parametrize("name", ["is", "fft", "hpccg"])
    def test_workloads_round_trip(self, name):
        from repro.workloads import get_workload

        module = get_workload(name).compile()
        text = print_module(module)
        parsed = parse_module(text)
        verify_module(parsed)
        assert print_module(parsed) == text

    def test_protected_module_round_trips(self):
        from repro.workloads import get_workload

        module = get_workload("is").compile()
        duplicate_instructions(module, FullDuplicationSelector().select(module))
        text = print_module(module)
        parsed = parse_module(text)
        verify_module(parsed)
        assert print_module(parsed) == text

    def test_parsed_module_behaves_identically(self):
        source = """
        output double r[1];
        void main() {
            double acc = 0.0;
            for (int i = 1; i <= 10; i = i + 1) { acc = acc + 1.0 / (double)i; }
            r[0] = acc;
        }
        """
        original = compile_source(source)
        r1, i1 = run_module(original)
        parsed = parse_module(print_module(original))
        r2, i2 = run_module(parsed)
        assert i1.read_global("r") == i2.read_global("r")
        assert r1.cycles == r2.cycles

    def test_control_flow_with_phis(self):
        text = """
        define i64 @main() {
        entry:
          br label %header
        header:
          %i = phi i64 [ 0, %entry ], [ %next, %body ]
          %cond = icmp slt i64 %i, 5
          br i1 %cond, label %body, label %exit
        body:
          %next = add i64 %i, 1
          br label %header
        exit:
          ret i64 %i
        }
        """
        module = parse_module(text)
        verify_module(module)
        result, _ = run_module(module)
        assert result.value == 5

    def test_forward_value_references_resolve(self):
        # %next is used by the phi before it is defined: must parse.
        module = parse_module(
            """
            define i64 @f(i64 %n) {
            entry:
              br label %loop
            loop:
              %acc = phi i64 [ 1, %entry ], [ %next, %loop ]
              %next = mul i64 %acc, 2
              %done = icmp sge i64 %next, %n
              br i1 %done, label %out, label %loop
            out:
              ret i64 %next
            }
            define i64 @main() {
            entry:
              %r = call i64 @f(i64 100)
              ret i64 %r
            }
            """
        )
        verify_module(module)
        assert run_module(module)[0].value == 128


class TestParseErrors:
    @pytest.mark.parametrize(
        "text,pattern",
        [
            ("define i64 @f() {\nentry:\n  ret i64 %ghost\n}", "undefined value"),
            ("define i64 @f() {\n  ret i64 0\n}", "before first block"),
            ("define i64 @f() {\nentry:\n  ret i64 0", "unterminated"),
            ("@g = global i64 init nonsense;", "bad"),
            ("wibble", "unexpected line"),
            ("declare f64 @f(", "bad declare"),
            (
                "define void @f() {\nentry:\n  %x = frobnicate i64 1, 2\n  ret void\n}",
                "unknown instruction",
            ),
            (
                "define void @f() {\nentry:\n  %v = call f64 @missing(f64 1.0)\n  ret void\n}",
                "unknown callee",
            ),
        ],
    )
    def test_rejected(self, text, pattern):
        with pytest.raises(IRParseError, match=pattern):
            parse_module(text)

    def test_error_carries_line_number(self):
        with pytest.raises(IRParseError) as info:
            parse_module("define i64 @f() {\nentry:\n  ret i64 %nope\n}")
        assert "line" in str(info.value) or info.value.line_number >= 0
