"""Tests for post-dominators and control dependence."""

import pytest

from repro import compile_source
from repro.analysis import PostDominatorTree, control_dependence, forward_slice
from repro.analysis.slicing import SliceContext
from repro.ir import I1, I64, IRBuilder, Module, const_bool, const_int, verify_module


def diamond():
    """entry -> {left, right} -> exit."""
    m = Module("t")
    fn = m.add_function("f", I64, [I1], ["c"])
    entry = fn.add_block("entry")
    left = fn.add_block("left")
    right = fn.add_block("right")
    exit_ = fn.add_block("exit")
    IRBuilder(entry).cond_br(fn.args[0], left, right)
    IRBuilder(left).br(exit_)
    IRBuilder(right).br(exit_)
    IRBuilder(exit_).ret(const_int(0))
    verify_module(m)
    return fn, (entry, left, right, exit_)


def loop_fn():
    m = Module("t")
    fn = m.add_function("f", I64, [I64], ["n"])
    entry = fn.add_block("entry")
    header = fn.add_block("header")
    body = fn.add_block("body")
    exit_ = fn.add_block("exit")
    IRBuilder(entry).br(header)
    bh = IRBuilder(header)
    i = bh.phi(I64, "i")
    cond = bh.icmp("slt", i, fn.args[0])
    bh.cond_br(cond, body, exit_)
    bb = IRBuilder(body)
    i2 = bb.add(i, const_int(1))
    bb.br(header)
    i.add_incoming(const_int(0), entry)
    i.add_incoming(i2, body)
    IRBuilder(exit_).ret(i)
    verify_module(m)
    return fn, (entry, header, body, exit_)


class TestPostDominators:
    def test_diamond_ipdoms(self):
        fn, (entry, left, right, exit_) = diamond()
        pdt = PostDominatorTree(fn)
        assert pdt.immediate_post_dominator(entry) is exit_
        assert pdt.immediate_post_dominator(left) is exit_
        assert pdt.immediate_post_dominator(right) is exit_
        assert pdt.immediate_post_dominator(exit_) is None  # virtual exit

    def test_post_dominates(self):
        fn, (entry, left, right, exit_) = diamond()
        pdt = PostDominatorTree(fn)
        assert pdt.post_dominates(exit_, entry)
        assert pdt.post_dominates(exit_, left)
        assert not pdt.post_dominates(left, entry)
        assert pdt.post_dominates(left, left)  # reflexive

    def test_loop_ipdoms(self):
        fn, (entry, header, body, exit_) = loop_fn()
        pdt = PostDominatorTree(fn)
        assert pdt.immediate_post_dominator(body) is header
        assert pdt.immediate_post_dominator(header) is exit_
        assert pdt.post_dominates(header, entry)

    def test_straightline(self):
        m = Module("t")
        fn = m.add_function("f", I64, [])
        a = fn.add_block("a")
        b2 = fn.add_block("b")
        IRBuilder(a).br(b2)
        IRBuilder(b2).ret(const_int(1))
        pdt = PostDominatorTree(fn)
        assert pdt.immediate_post_dominator(a) is b2


class TestControlDependence:
    def test_diamond_arms_depend_on_entry(self):
        fn, (entry, left, right, exit_) = diamond()
        deps = control_dependence(fn)
        assert deps[entry] == {left, right}
        assert deps[left] == set()
        assert exit_ not in deps[entry]  # exit runs regardless

    def test_loop_body_depends_on_header(self):
        fn, (entry, header, body, exit_) = loop_fn()
        deps = control_dependence(fn)
        assert body in deps[header]
        # The header controls its own re-execution through the back edge.
        assert header in deps[header]
        assert exit_ not in deps[header]

    def test_nested_if(self):
        source = """
        int scale = 1;
        output double r[1];
        void main() {
            double v = 0.0;
            if (scale > 0) {
                if (scale > 10) { v = 2.0; }
                else { v = 1.0; }
            }
            r[0] = v;
        }
        """
        module = compile_source(source)
        main = module.get_function("main")
        deps = control_dependence(main)
        # There are two branch points; each controls a non-empty set.
        controllers = [b for b, controlled in deps.items() if controlled]
        assert len(controllers) >= 2


class TestControlAwareSlicing:
    SOURCE = """
    int n = 4;
    output double r[2];
    void main() {
        // Global-array stores cannot be promoted to registers, so the
        // guarded assignments survive as stores in control-dependent blocks.
        if (n > 2) {
            r[0] = 1.0;    // control-dependent on the n > 2 branch
        } else {
            r[0] = 2.0;
        }
        r[1] = 5.0;        // not control-dependent on it
    }
    """

    def test_control_slice_includes_guarded_code(self):
        module = compile_source(self.SOURCE)
        main = module.get_function("main")
        context = SliceContext(module)
        cmp_inst = next(i for i in main.instructions() if i.opcode == "icmp")
        plain = forward_slice(cmp_inst, context=context, include_control=False)
        control = forward_slice(cmp_inst, context=context, include_control=True)
        assert len(control) > len(plain)
        # The stores of the guarded assignments join only the control slice.
        guarded_stores = [
            i
            for i in control
            if i.opcode == "store" and i not in plain
        ]
        assert guarded_stores

    def test_workload_control_slices_terminate(self):
        from repro.workloads import get_workload

        module = get_workload("is").compile()
        context = SliceContext(module)
        main = module.get_function("main")
        some = [i for i in main.instructions() if i.produces_value()][:10]
        for inst in some:
            sliced = forward_slice(
                inst, context=context, include_control=True, max_size=2000
            )
            assert len(sliced) <= 2100
