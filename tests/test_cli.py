"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_scale_choices(self):
        args = build_parser().parse_args(["protect", "is", "--scale", "quick"])
        assert args.scale == "quick"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["protect", "is", "--scale", "huge"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("comd", "hpccg", "amg", "fft", "is"):
            assert name in out
        assert "training input" in out

    def test_run(self, capsys):
        assert main(["run", "is"]) == 0
        out = capsys.readouterr().out
        assert "status: ok" in out
        assert "sorted_keys" in out

    def test_run_unknown_workload(self):
        with pytest.raises(KeyError):
            main(["run", "linpack"])

    def test_inject(self, capsys):
        assert main(["inject", "is", "--trials", "20"]) == 0
        out = capsys.readouterr().out
        assert "20 single-bit faults" in out
        assert "masked" in out and "soc" in out

    def test_compile(self, tmp_path, capsys):
        source = tmp_path / "kernel.scil"
        source.write_text(
            "output double r[1];\n"
            "void main() { r[0] = sqrt(2.0); }\n"
        )
        assert main(["compile", str(source)]) == 0
        out = capsys.readouterr().out
        assert "define void @main()" in out
        assert "@r = global" in out

    def test_compile_no_opt_keeps_allocas(self, tmp_path, capsys):
        source = tmp_path / "kernel.scil"
        source.write_text(
            "output double r[1];\n"
            "void main() { double x = 1.5; r[0] = x * 2.0; }\n"
        )
        assert main(["compile", str(source), "--no-opt"]) == 0
        out = capsys.readouterr().out
        assert "alloca" in out

    def test_protect_quick(self, capsys, monkeypatch):
        monkeypatch.setenv("IPAS_TRAIN_SAMPLES", "60")
        monkeypatch.setenv("IPAS_GRID_CONFIGS", "4")
        monkeypatch.setenv("IPAS_TOP_N", "1")
        monkeypatch.setenv("IPAS_SCALE", "quick")
        assert main(["protect", "is"]) == 0
        out = capsys.readouterr().out
        assert "duplicated" in out
        assert "training campaign" in out


class TestAnalyze:
    def test_analyze_workload_text(self, capsys):
        assert main(["analyze", "hpccg"]) == 0
        out = capsys.readouterr().out
        assert "diagnostics: 0 errors, 0 warnings, 0 notes" in out
        assert "static risk:" in out

    def test_analyze_json_covers_every_duplicable_instruction(self, capsys):
        import json

        from repro.analysis.risk import DUPLICABLE_TYPES
        from repro.workloads import get_workload

        assert main(["analyze", "is", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["exit_ok"] is True
        module = get_workload("is").compile()
        duplicable = sum(
            isinstance(i, DUPLICABLE_TYPES) for i in module.instructions()
        )
        assert len(payload["risk"]) == duplicable
        for entry in payload["risk"]:
            assert {"function", "block", "opcode", "risk"} <= set(entry)

    def test_analyze_scil_file(self, tmp_path, capsys):
        source = tmp_path / "kernel.scil"
        source.write_text(
            "output double r[1];\n"
            "void main() { r[0] = sqrt(2.0); }\n"
        )
        assert main(["analyze", str(source)]) == 0
        out = capsys.readouterr().out
        assert "static risk:" in out

    def test_analyze_unknown_target(self, capsys):
        assert main(["analyze", "linpack"]) == 2
        assert "unknown analyze target" in capsys.readouterr().err

    def test_analyze_debug_passes(self, capsys):
        assert main(["analyze", "fft", "--debug-passes"]) == 0
        out = capsys.readouterr().out
        assert "pass pipeline checkpoints:" in out
        for name in ("mem2reg", "constant-fold", "simplify-cfg", "dce"):
            assert name in out

    def dead_store_kernel(self, tmp_path):
        source = tmp_path / "deadstore.scil"
        source.write_text(
            "int scratch = 0;\n"
            "output double r[1];\n"
            "void main() { scratch = 5; r[0] = 1.5; }\n"
        )
        return str(source)

    def test_analyze_fail_on_warning(self, tmp_path, capsys):
        target = self.dead_store_kernel(tmp_path)
        # A warning finding: exit 0 under the default error gate, exit 1
        # when warnings gate CI.
        assert main(["analyze", target]) == 0
        capsys.readouterr()
        assert main(["analyze", target, "--fail-on", "warning"]) == 1
        assert "warning[DS01]" in capsys.readouterr().out

    def test_analyze_fail_on_warning_clean_module(self, capsys):
        assert main(["analyze", "hpccg", "--fail-on", "warning"]) == 0

    def test_analyze_coverage_text(self, capsys):
        assert main(["analyze", "hpccg", "--coverage", "--protect", "full"]) == 0
        out = capsys.readouterr().out
        assert "coverage prover:" in out
        assert "detected" in out

    def test_analyze_coverage_json(self, capsys):
        import json

        assert main(
            ["analyze", "is", "--coverage", "--protect", "full",
             "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        summary = payload["coverage"]["summary"]
        assert summary["sites"] == (
            summary["detected"] + summary["masked"] + summary["escapes"]
        )
        assert summary["detected"] > 0  # full duplication must cover sites
        for site in payload["coverage"]["sites"]:
            assert site["verdict"] in ("detected", "masked", "escapes")

    def test_analyze_unprotected_coverage_all_escapes_or_masked(self, capsys):
        import json

        assert main(["analyze", "is", "--coverage", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["coverage"]["summary"]["detected"] == 0

    def test_analyze_risk_threshold_flag_parses(self):
        args = build_parser().parse_args(
            ["analyze", "is", "--risk-threshold", "0.5", "--top", "3"]
        )
        assert args.risk_threshold == 0.5 and args.top == 3


class TestChaosSpecValidation:
    """--chaos specs are rejected at argparse time, naming the bad token,
    instead of blowing up (or worse, being ignored) mid-campaign."""

    def test_inject_accepts_good_spec(self):
        args = build_parser().parse_args(
            ["inject", "is", "--chaos", "kill@7,hang@12:3"]
        )
        assert args.chaos == "kill@7,hang@12:3"

    def test_inject_rejects_bad_spec_naming_token(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["inject", "is", "--chaos", "explode@7"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "explode@7" in err
        assert "kill@IDX" in err

    def test_serve_accepts_good_spec(self):
        args = build_parser().parse_args(
            ["serve", "--journal", "j", "--chaos", "kill@2,drop-ack@1"]
        )
        assert args.chaos == "kill@2,drop-ack@1"

    def test_serve_rejects_bad_spec_naming_token(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(
                ["serve", "--journal", "j", "--chaos", "kaboom@3"]
            )
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "kaboom@3" in err
        assert "drop-ack@N" in err

    def test_serve_rejects_worker_grammar(self, capsys):
        # The two grammars must not leak into each other.
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "--journal", "j", "--chaos", "hang@2:1"]
            )
        with pytest.raises(SystemExit):
            build_parser().parse_args(["inject", "is", "--chaos", "drop-ack@1"])


class TestFaultModelSpecValidation:
    """--fault-model specs are rejected at argparse time, naming the bad
    token, exactly like --chaos."""

    def test_inject_accepts_good_specs(self):
        for spec in (
            "transient-1bit",
            "transient-multibit:k=3,adjacent=0",
            "pattern:kind=stuck1",
            "intermittent:p=0.25,window=4",
            "persistent",
        ):
            args = build_parser().parse_args(
                ["inject", "is", "--fault-model", spec]
            )
            assert args.fault_model == spec

    def test_inject_rejects_unknown_model_naming_token(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["inject", "is", "--fault-model", "chaos"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "'chaos'" in err
        assert "transient-1bit" in err

    def test_inject_rejects_bad_parameter_naming_token(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(
                ["inject", "is", "--fault-model", "transient-multibit:boom=1"]
            )
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "boom=1" in err
        assert "adjacent" in err and "k" in err

    def test_inject_rejects_out_of_range_parameter(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(
                ["inject", "is", "--fault-model", "intermittent:p=7"]
            )
        assert excinfo.value.code == 2
        assert "p must be in (0, 1]" in capsys.readouterr().err

    def test_inject_status_line_names_the_model(self, capsys):
        assert main(
            ["inject", "is", "--trials", "10", "--fault-model", "persistent"]
        ) == 0
        out = capsys.readouterr().out
        assert "10 persistent faults injected into is" in out

    def test_inject_default_status_line_unchanged(self, capsys):
        assert main(
            ["inject", "is", "--trials", "10", "--fault-model", "transient-1bit"]
        ) == 0
        assert "10 single-bit faults injected into is" in capsys.readouterr().out


class TestServiceCommands:
    def test_submit_requires_address(self, capsys):
        assert main(["submit", "fft", "--trials", "4"]) == 2
        assert "--connect" in capsys.readouterr().err

    def test_status_requires_address(self, capsys):
        assert main(["status"]) == 2
        assert "--connect" in capsys.readouterr().err

    def test_worker_requires_address(self, capsys):
        assert main(["worker"]) == 2
        assert "--connect" in capsys.readouterr().err

    def test_serve_requires_journal(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])
