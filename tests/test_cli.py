"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_scale_choices(self):
        args = build_parser().parse_args(["protect", "is", "--scale", "quick"])
        assert args.scale == "quick"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["protect", "is", "--scale", "huge"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("comd", "hpccg", "amg", "fft", "is"):
            assert name in out
        assert "training input" in out

    def test_run(self, capsys):
        assert main(["run", "is"]) == 0
        out = capsys.readouterr().out
        assert "status: ok" in out
        assert "sorted_keys" in out

    def test_run_unknown_workload(self):
        with pytest.raises(KeyError):
            main(["run", "linpack"])

    def test_inject(self, capsys):
        assert main(["inject", "is", "--trials", "20"]) == 0
        out = capsys.readouterr().out
        assert "20 single-bit faults" in out
        assert "masked" in out and "soc" in out

    def test_compile(self, tmp_path, capsys):
        source = tmp_path / "kernel.scil"
        source.write_text(
            "output double r[1];\n"
            "void main() { r[0] = sqrt(2.0); }\n"
        )
        assert main(["compile", str(source)]) == 0
        out = capsys.readouterr().out
        assert "define void @main()" in out
        assert "@r = global" in out

    def test_compile_no_opt_keeps_allocas(self, tmp_path, capsys):
        source = tmp_path / "kernel.scil"
        source.write_text(
            "output double r[1];\n"
            "void main() { double x = 1.5; r[0] = x * 2.0; }\n"
        )
        assert main(["compile", str(source), "--no-opt"]) == 0
        out = capsys.readouterr().out
        assert "alloca" in out

    def test_protect_quick(self, capsys, monkeypatch):
        monkeypatch.setenv("IPAS_TRAIN_SAMPLES", "60")
        monkeypatch.setenv("IPAS_GRID_CONFIGS", "4")
        monkeypatch.setenv("IPAS_TOP_N", "1")
        monkeypatch.setenv("IPAS_SCALE", "quick")
        assert main(["protect", "is"]) == 0
        out = capsys.readouterr().out
        assert "duplicated" in out
        assert "training campaign" in out
