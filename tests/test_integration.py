"""Cross-module integration tests: the whole stack on every workload.

These run full-duplication protection + a short fault campaign on each of
the five codes — slower than unit tests, but they pin the one property the
entire reproduction hangs on: *protection detects faults and suppresses SOC
on real programs*, not just on toy kernels.
"""

import pytest

from repro.faults import Campaign, Outcome
from repro.interp import Interpreter
from repro.ir import verify_module
from repro.protect import FullDuplicationSelector, duplicate_instructions
from repro.workloads import WORKLOAD_NAMES, get_workload

TRIALS = 40


@pytest.fixture(scope="module", params=WORKLOAD_NAMES)
def protected_setup(request):
    name = request.param
    workload = get_workload(name)
    clean_module = workload.compile()
    protected_module = workload.compile()
    duplicate_instructions(
        protected_module, FullDuplicationSelector().select(protected_module)
    )
    verify_module(protected_module)
    return workload, clean_module, protected_module


class TestFullProtectionEndToEnd:
    def test_protected_output_identical(self, protected_setup):
        workload, clean_module, protected_module = protected_setup
        clean = workload.make_interpreter(1, module=clean_module)
        assert clean.run().status == "ok"
        protected = workload.make_interpreter(1, module=protected_module)
        assert protected.run().status == "ok"
        for gv in clean_module.output_globals():
            assert clean.read_global(gv.name) == protected.read_global(gv.name)

    def test_slowdown_in_swift_range(self, protected_setup):
        workload, clean_module, protected_module = protected_setup
        clean_cycles = workload.make_interpreter(1, module=clean_module).run().cycles
        protected_cycles = (
            workload.make_interpreter(1, module=protected_module).run().cycles
        )
        slowdown = protected_cycles / clean_cycles
        # Full duplication roughly doubles the compute instructions;
        # memory/control stay single, so < 3x overall.
        assert 1.2 < slowdown < 3.0, slowdown

    def test_protection_shifts_soc_to_detected(self, protected_setup):
        workload, clean_module, protected_module = protected_setup
        unprotected_campaign = Campaign(
            workload.make_interpreter(1, module=clean_module),
            verifier=workload.verifier(),
            budget_factor=workload.budget_factor,
        )
        unprotected = unprotected_campaign.run(TRIALS, seed=21)
        protected_campaign = Campaign(
            workload.make_interpreter(1, module=protected_module),
            verifier=workload.verifier(),
            budget_factor=workload.budget_factor,
        )
        protected = protected_campaign.run(TRIALS, seed=21)
        assert unprotected.counts.detected_fraction == 0.0
        assert protected.counts.detected_fraction > 0.25
        assert protected.counts.soc_fraction <= unprotected.counts.soc_fraction
