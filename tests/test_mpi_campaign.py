"""Tests for fault injection into parallel (simulated MPI) jobs."""

import random

import pytest

from repro.faults import MpiCampaign, Outcome
from repro.protect import FullDuplicationSelector, duplicate_instructions
from repro.workloads import get_workload

RANKS = 3
TRIALS = 30


@pytest.fixture(scope="module")
def workload():
    return get_workload("is")


@pytest.fixture(scope="module")
def campaign(workload):
    job = workload.make_job(RANKS, 1)
    c = MpiCampaign(job, verifier=workload.verifier(), budget_factor=workload.budget_factor)
    c.prepare()
    return c


class TestMpiCampaign:
    def test_golden_run_and_population(self, campaign):
        assert campaign.golden_cycles > 0
        assert campaign._total_weight > 0

    def test_sampling_covers_multiple_ranks(self, campaign):
        rng = random.Random(0)
        ranks = {campaign.sample(rng)[1] for _ in range(60)}
        assert len(ranks) > 1  # faults land in different ranks

    def test_outcomes_classified(self, campaign):
        result = campaign.run(TRIALS, seed=5)
        assert result.counts.total == TRIALS
        # Unprotected: never "detected"; some faults must propagate somehow.
        assert result.counts.detected_fraction == 0.0
        assert (
            result.counts.symptom_fraction
            + result.counts.masked_fraction
            + result.counts.soc_fraction
        ) == pytest.approx(1.0)

    def test_deterministic(self, campaign):
        r1 = campaign.run(15, seed=9)
        r2 = campaign.run(15, seed=9)
        assert [x.outcome for x in r1.records] == [x.outcome for x in r2.records]
        assert [x.rank for x in r1.records] == [x.rank for x in r2.records]

    def test_protected_job_detects_across_ranks(self, workload):
        module = workload.compile()
        duplicate_instructions(module, FullDuplicationSelector().select(module))
        job = workload.make_job(RANKS, 1, module=module)
        campaign = MpiCampaign(
            job, verifier=workload.verifier(), budget_factor=workload.budget_factor
        )
        result = campaign.run(TRIALS, seed=5)
        # A detection on any rank surfaces as a job-level detection.
        assert result.counts.detected_fraction > 0.2
        assert result.counts.soc_fraction <= 0.1
        detected_ranks = {
            r.rank for r in result.records if r.outcome is Outcome.DETECTED
        }
        assert detected_ranks  # at least one rank caught a fault

    def test_parallel_shape_matches_serial(self, workload, campaign):
        """Job-level outcome mix tracks the serial campaign's shape."""
        from repro.faults import Campaign

        serial = Campaign(
            workload.make_interpreter(1),
            verifier=workload.verifier(),
            budget_factor=workload.budget_factor,
        ).run(TRIALS, seed=5)
        parallel = campaign.run(TRIALS, seed=5)
        # Masking dominates SOC in both worlds.
        assert serial.counts.masked_fraction > serial.counts.soc_fraction
        assert parallel.counts.masked_fraction > parallel.counts.soc_fraction
