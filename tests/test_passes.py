"""Unit tests for the optimization passes."""

import pytest

from repro.ir import (
    F64,
    I1,
    I64,
    IRBuilder,
    Module,
    PhiNode,
    VOID,
    const_bool,
    const_float,
    const_int,
    verify_module,
)
from repro.ir.instructions import AllocaInst, LoadInst, StoreInst
from repro.passes import (
    PassManager,
    constant_fold_module,
    dce_module,
    fold_binary,
    mem2reg_module,
    optimize_module,
    promotable_allocas,
    simplify_cfg_module,
    standard_pipeline,
)


def build_abs_function():
    """Classic mem2reg shape: x = alloca; store; if-else re-store; load."""
    m = Module("t")
    fn = m.add_function("abs64", I64, [I64], ["v"])
    entry = fn.add_block("entry")
    neg = fn.add_block("neg")
    done = fn.add_block("done")
    b = IRBuilder(entry)
    slot = b.alloca(I64, "x")
    b.store(fn.args[0], slot)
    is_neg = b.icmp("slt", fn.args[0], const_int(0))
    b.cond_br(is_neg, neg, done)
    bn = IRBuilder(neg)
    negated = bn.sub(const_int(0), fn.args[0])
    bn.store(negated, slot)
    bn.br(done)
    bd = IRBuilder(done)
    result = bd.load(slot)
    bd.ret(result)
    verify_module(m)
    return m, fn


class TestMem2Reg:
    def test_promotes_scalar_alloca(self):
        m, fn = build_abs_function()
        assert mem2reg_module(m)
        verify_module(m)
        opcodes = [i.opcode for i in fn.instructions()]
        assert "alloca" not in opcodes
        assert "load" not in opcodes
        assert "store" not in opcodes

    def test_inserts_phi_at_join(self):
        m, fn = build_abs_function()
        mem2reg_module(m)
        done = next(b for b in fn.blocks if b.name == "done")
        phis = done.phis()
        assert len(phis) == 1
        assert len(phis[0].operands) == 2

    def test_array_alloca_not_promoted(self):
        from repro.ir import ArrayType

        m = Module("t")
        fn = m.add_function("f", F64, [])
        b = IRBuilder(fn.add_block("entry"))
        arr = b.alloca(ArrayType(F64, 4), "buf")
        p = b.gep(arr, const_int(0))
        b.store(const_float(1.0), p)
        v = b.load(p)
        b.ret(v)
        verify_module(m)
        assert promotable_allocas(fn) == []
        mem2reg_module(m)
        assert any(isinstance(i, AllocaInst) for i in fn.instructions())

    def test_promotion_preserves_semantics(self):
        # Interpreted result must be identical before and after promotion;
        # covered more broadly in interpreter tests, structural check here.
        m, fn = build_abs_function()
        mem2reg_module(m)
        verify_module(m)
        # The phi in done must merge `v` (passthrough) and `0 - v`.
        done = next(b for b in fn.blocks if b.name == "done")
        phi = done.phis()[0]
        incoming_names = {b.name for b in phi.incoming_blocks}
        assert incoming_names == {"entry", "neg"}

    def test_single_block_store_load(self):
        m = Module("t")
        fn = m.add_function("f", I64, [I64], ["x"])
        b = IRBuilder(fn.add_block("entry"))
        slot = b.alloca(I64)
        b.store(fn.args[0], slot)
        v = b.load(slot)
        doubled = b.add(v, v)
        b.ret(doubled)
        mem2reg_module(m)
        verify_module(m)
        assert fn.entry.instructions[0].opcode == "add"

    def test_load_before_store_yields_undef(self):
        m = Module("t")
        fn = m.add_function("f", I64, [])
        b = IRBuilder(fn.add_block("entry"))
        slot = b.alloca(I64)
        v = b.load(slot)
        b.ret(v)
        mem2reg_module(m)
        verify_module(m)
        ret = fn.entry.instructions[-1]
        from repro.ir import UndefValue

        assert isinstance(ret.operands[0], UndefValue)

    def test_loop_counter_promotion(self):
        m = Module("t")
        fn = m.add_function("count", I64, [I64], ["n"])
        entry = fn.add_block("entry")
        header = fn.add_block("header")
        body = fn.add_block("body")
        exit_ = fn.add_block("exit")
        b = IRBuilder(entry)
        slot = b.alloca(I64, "i")
        b.store(const_int(0), slot)
        b.br(header)
        bh = IRBuilder(header)
        i = bh.load(slot)
        cond = bh.icmp("slt", i, fn.args[0])
        bh.cond_br(cond, body, exit_)
        bb = IRBuilder(body)
        i2 = bb.load(slot)
        inext = bb.add(i2, const_int(1))
        bb.store(inext, slot)
        bb.br(header)
        be = IRBuilder(exit_)
        final = be.load(slot)
        be.ret(final)
        verify_module(m)
        mem2reg_module(m)
        verify_module(m)
        header_blk = next(b_ for b_ in fn.blocks if b_.name == "header")
        assert len(header_blk.phis()) == 1


class TestConstantFolding:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("add", 2, 3, 5),
            ("sub", 2, 3, -1),
            ("mul", -4, 3, -12),
            ("sdiv", 7, 2, 3),
            ("sdiv", -7, 2, -3),  # C-style truncating division
            ("srem", -7, 2, -1),
            ("and", 0b1100, 0b1010, 0b1000),
            ("or", 0b1100, 0b1010, 0b1110),
            ("xor", 0b1100, 0b1010, 0b0110),
            ("shl", 1, 10, 1024),
            ("ashr", -8, 1, -4),
        ],
    )
    def test_int_folds(self, op, a, b, expected):
        folded = fold_binary(op, const_int(a), const_int(b))
        assert folded is not None and folded.value == expected

    def test_int_add_wraps(self):
        folded = fold_binary("add", const_int(2**63 - 1), const_int(1))
        assert folded.value == -(2**63)

    def test_division_by_zero_not_folded(self):
        assert fold_binary("sdiv", const_int(1), const_int(0)) is None
        assert fold_binary("srem", const_int(1), const_int(0)) is None

    def test_float_folds(self):
        assert fold_binary("fadd", const_float(1.5), const_float(2.5)).value == 4.0
        assert fold_binary("fdiv", const_float(1.0), const_float(4.0)).value == 0.25

    def test_float_div_by_zero_folds_to_inf(self):
        folded = fold_binary("fdiv", const_float(1.0), const_float(0.0))
        assert folded.value == float("inf")

    def test_folds_through_module(self):
        m = Module("t")
        fn = m.add_function("f", I64, [])
        b = IRBuilder(fn.add_block("entry"))
        v = b.add(const_int(2), const_int(3))
        w = b.mul(v, const_int(4))
        b.ret(w)
        assert constant_fold_module(m)
        verify_module(m)
        ret = fn.entry.instructions[-1]
        assert ret.operands[0].value == 20

    def test_fold_cmp_and_select(self):
        m = Module("t")
        fn = m.add_function("f", I64, [])
        b = IRBuilder(fn.add_block("entry"))
        c = b.icmp("slt", const_int(1), const_int(2))
        v = b.select(c, const_int(10), const_int(20))
        b.ret(v)
        constant_fold_module(m)
        ret = fn.entry.instructions[-1]
        assert ret.operands[0].value == 10


class TestDCE:
    def test_removes_unused_arithmetic(self):
        m = Module("t")
        fn = m.add_function("f", I64, [I64], ["x"])
        b = IRBuilder(fn.add_block("entry"))
        dead = b.mul(fn.args[0], const_int(100))
        dead2 = b.add(dead, const_int(1))
        b.ret(fn.args[0])
        assert dce_module(m)
        verify_module(m)
        assert fn.instruction_count == 1

    def test_keeps_stores_and_calls(self):
        m = Module("t")
        sqrt = m.declare_function("sqrt", F64, [F64])
        fn = m.add_function("f", VOID, [F64], ["x"])
        b = IRBuilder(fn.add_block("entry"))
        g = m.add_global("out", F64)
        b.call(sqrt, [fn.args[0]])  # result unused but call kept
        b.store(fn.args[0], g)
        b.ret()
        assert not dce_module(m)
        assert fn.instruction_count == 3


class TestSimplifyCFG:
    def test_folds_constant_branch(self):
        m = Module("t")
        fn = m.add_function("f", I64, [])
        entry = fn.add_block("entry")
        then = fn.add_block("then")
        other = fn.add_block("other")
        IRBuilder(entry).cond_br(const_bool(True), then, other)
        IRBuilder(then).ret(const_int(1))
        IRBuilder(other).ret(const_int(2))
        assert simplify_cfg_module(m)
        verify_module(m)
        assert len(fn.blocks) == 1
        assert fn.entry.instructions[-1].operands[0].value == 1

    def test_merges_straightline_chain(self):
        m = Module("t")
        fn = m.add_function("f", I64, [I64], ["x"])
        a = fn.add_block("a")
        b2 = fn.add_block("b")
        c = fn.add_block("c")
        IRBuilder(a).br(b2)
        bb = IRBuilder(b2)
        v = bb.add(fn.args[0], const_int(1))
        bb.br(c)
        IRBuilder(c).ret(v)
        assert simplify_cfg_module(m)
        verify_module(m)
        assert len(fn.blocks) == 1

    def test_dead_edge_updates_phi(self):
        m = Module("t")
        fn = m.add_function("f", I64, [])
        entry = fn.add_block("entry")
        left = fn.add_block("left")
        right = fn.add_block("right")
        join = fn.add_block("join")
        IRBuilder(entry).cond_br(const_bool(False), left, right)
        IRBuilder(left).br(join)
        IRBuilder(right).br(join)
        bj = IRBuilder(join)
        phi = bj.phi(I64)
        phi.add_incoming(const_int(1), left)
        phi.add_incoming(const_int(2), right)
        bj.ret(phi)
        verify_module(m)
        simplify_cfg_module(m)
        verify_module(m)
        # After folding the branch, only `right` flows to join (value 2).
        ret = fn.blocks[-1].instructions[-1]
        assert len(fn.blocks) == 1
        assert ret.operands[0].value == 2


class TestPassManager:
    def test_pipeline_to_fixpoint(self):
        m, fn = build_abs_function()
        optimize_module(m)
        verify_module(m)
        opcodes = [i.opcode for i in fn.instructions()]
        assert "alloca" not in opcodes

    def test_run_reports_changed_passes(self):
        m, _ = build_abs_function()
        pm = standard_pipeline()
        changed = pm.run(m)
        assert "mem2reg" in changed

    def test_custom_pass_registration(self):
        calls = []

        def noop(module):
            calls.append(module.name)
            return False

        pm = PassManager()
        pm.add("noop", noop)
        m = Module("probe")
        iterations = pm.run_to_fixpoint(m)
        assert iterations == 1
        assert calls == ["probe"]


class TestVerifyEachPassKnob:
    """IPAS_VERIFY_EACH_PASS forces inter-pass verification even on
    managers constructed with verify=False (CI sets it globally)."""

    def breaking_pass(self, module):
        # Detach a terminator: structurally invalid, but only the
        # verifier notices.
        fn = next(iter(module.functions.values()))
        fn.blocks[0].instructions.pop()
        return True

    def make_module(self):
        m = Module("knob")
        fn = m.add_function("main", I64, [])
        b = IRBuilder(fn.add_block("entry"))
        b.ret(const_int(0))
        return m

    def test_unverified_manager_misses_breakage(self, monkeypatch):
        from repro.passes import verify_forced

        monkeypatch.delenv("IPAS_VERIFY_EACH_PASS", raising=False)
        assert not verify_forced()
        pm = PassManager(verify=False)
        pm.add("break", self.breaking_pass)
        pm.run(self.make_module())  # no verification, no error

    def test_env_knob_forces_verification(self, monkeypatch):
        from repro.ir.verifier import VerificationError
        from repro.passes import verify_forced

        monkeypatch.setenv("IPAS_VERIFY_EACH_PASS", "1")
        assert verify_forced()
        pm = PassManager(verify=False)
        pm.add("break", self.breaking_pass)
        with pytest.raises(VerificationError):
            pm.run(self.make_module())

    def test_zero_and_empty_disable(self, monkeypatch):
        from repro.passes import verify_forced

        monkeypatch.setenv("IPAS_VERIFY_EACH_PASS", "0")
        assert not verify_forced()
        monkeypatch.setenv("IPAS_VERIFY_EACH_PASS", "")
        assert not verify_forced()
