"""Tests for the IPAS pipeline (Fig. 1 steps 2-4) and evaluation, at quick
scale on the fastest workload (IS)."""

import numpy as np
import pytest

from repro.core import (
    CollectedData,
    ExperimentScale,
    IpasPipeline,
    LABEL_SOC,
    LABEL_SYMPTOM,
    collect_data,
    evaluate_unprotected,
    evaluate_variant,
    ideal_point_best,
)
from repro.faults import Outcome
from repro.features import NUM_FEATURES
from repro.workloads import get_workload

SCALE = ExperimentScale(train_samples=120, grid_configs=9, eval_trials=40, top_n=3)


@pytest.fixture(scope="module")
def workload():
    return get_workload("is")


@pytest.fixture(scope="module")
def collected(workload):
    return collect_data(workload, SCALE.train_samples, seed=0)


@pytest.fixture(scope="module")
def soc_pipeline(workload, collected):
    pipeline = IpasPipeline(workload, SCALE, LABEL_SOC, seed=0, collected=collected)
    pipeline.train()
    return pipeline


class TestScale:
    def test_presets(self):
        paper = ExperimentScale.preset("paper")
        assert paper.train_samples == 2500
        assert paper.grid_configs == 500
        assert paper.eval_trials == 1024
        assert paper.top_n == 5

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            ExperimentScale.preset("enormous")

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentScale(0, 1, 1, 1)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("IPAS_SCALE", "quick")
        monkeypatch.setenv("IPAS_TRAIN_SAMPLES", "33")
        scale = ExperimentScale.from_env()
        assert scale.train_samples == 33
        assert scale.top_n == ExperimentScale.PRESETS["quick"]["top_n"]

    def test_cache_key_distinguishes(self):
        a = ExperimentScale(10, 10, 10, 3)
        b = ExperimentScale(10, 10, 11, 3)
        assert a.cache_key() != b.cache_key()


class TestCollection:
    def test_collected_shapes(self, collected):
        assert collected.X.shape == (SCALE.train_samples, NUM_FEATURES)
        assert len(collected.campaign.records) == SCALE.train_samples

    def test_labelings_differ(self, workload, collected):
        soc = IpasPipeline(workload, SCALE, LABEL_SOC, collected=collected)
        sym = IpasPipeline(workload, SCALE, LABEL_SYMPTOM, collected=collected)
        y_soc = soc.collect_training_data().y
        y_sym = sym.collect_training_data().y
        assert not np.array_equal(y_soc, y_sym)
        # SOC labels mark exactly the SOC trials.
        for label, record in zip(y_soc, collected.campaign.records):
            assert (label == 1) == (record.outcome is Outcome.SOC)
        for label, record in zip(y_sym, collected.campaign.records):
            assert (label == 1) == record.outcome.is_symptom

    def test_soc_is_minority_class(self, workload, collected):
        soc = IpasPipeline(workload, SCALE, LABEL_SOC, collected=collected)
        frac = soc.collect_training_data().positive_fraction
        assert 0.0 < frac < 0.5  # paper: 3-10% at full scale

    def test_bad_labeling_rejected(self, workload):
        with pytest.raises(ValueError):
            IpasPipeline(workload, SCALE, "bogus")


class TestTraining:
    def test_top_n_configs(self, soc_pipeline):
        configs = soc_pipeline.train()
        assert len(configs) == SCALE.top_n
        scores = [c.config.fscore for c in configs]
        assert scores == sorted(scores, reverse=True)
        assert soc_pipeline.training_seconds > 0

    def test_train_is_memoised(self, soc_pipeline):
        assert soc_pipeline.train() is soc_pipeline.train()

    def test_trained_model_predicts(self, soc_pipeline, collected):
        trained = soc_pipeline.train()[0]
        X = trained.scaler.transform(collected.X)
        predictions = trained.model.predict(X)
        assert set(np.unique(predictions)) <= {0, 1}


class TestProtection:
    def test_protect_produces_valid_module(self, soc_pipeline):
        from repro.ir import verify_module

        variant = soc_pipeline.protect(soc_pipeline.train()[0])
        verify_module(variant.module)
        assert variant.technique == "ipas"
        assert variant.duplication_seconds > 0

    def test_ipas_selects_fewer_than_baseline(self, workload, collected, soc_pipeline):
        sym = IpasPipeline(workload, SCALE, LABEL_SYMPTOM, collected=collected)
        ipas_variant = soc_pipeline.protect(soc_pipeline.train()[0])
        base_variant = sym.protect(sym.train()[0])
        # Fig. 7: IPAS duplicates fewer instructions than Shoestring-style.
        assert (
            ipas_variant.report.duplicated_fraction
            < base_variant.report.duplicated_fraction
        )

    def test_protected_module_still_correct(self, workload, soc_pipeline):
        variant = soc_pipeline.protect(soc_pipeline.train()[0])
        interp = workload.make_interpreter(1, module=variant.module)
        result = interp.run()
        assert result.status == "ok"
        verifier = workload.verifier()
        clean = workload.make_interpreter(1)
        clean.run()
        golden = verifier.capture(clean)
        assert verifier.check(interp, golden)


class TestEvaluation:
    def test_unprotected_evaluation(self, workload):
        ev = evaluate_unprotected(workload, 30, seed=5)
        assert ev.slowdown == 1.0
        assert ev.counts.total == 30
        assert ev.counts.detected_fraction == 0.0

    def test_protected_evaluation_reduces_soc(self, workload, soc_pipeline):
        unp = evaluate_unprotected(workload, 40, seed=5)
        variant = soc_pipeline.protect(soc_pipeline.train()[0])
        ev = evaluate_variant(
            variant.module,
            workload,
            unp.soc_fraction,
            unp.golden_cycles,
            "ipas",
            "cfg1",
            40,
            seed=5,
            duplicated_fraction=variant.report.duplicated_fraction,
        )
        assert ev.slowdown > 1.0
        assert ev.counts.detected_fraction > 0.0
        assert ev.soc_fraction <= unp.soc_fraction

    def test_ideal_point_best(self):
        from repro.core.evaluation import TechniqueEvaluation
        from repro.faults import OutcomeCounts

        def make(slowdown, reduction):
            return TechniqueEvaluation(
                "t", "c", OutcomeCounts(), 1, slowdown, 0.0, reduction
            )

        close = make(1.1, 90.0)
        far = make(1.05, 50.0)
        assert ideal_point_best([far, close]) is close
        assert ideal_point_best([]) is None
