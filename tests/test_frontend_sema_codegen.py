"""Tests for scil semantic analysis and end-to-end compile-and-run."""

import math

import pytest

from repro import compile_source
from repro.frontend import SemaError, analyze, parse
from repro.interp import Interpreter, run_module


def compile_and_run(source, entry="main", optimize=True, overrides=None):
    module = compile_source(source, optimize=optimize)
    result, interp = run_module(module, entry=entry, overrides=overrides)
    assert result.status == "ok", result.error
    return result, interp


class TestSemaErrors:
    @pytest.mark.parametrize(
        "source,pattern",
        [
            ("void f() { x = 1; }", "not assignable|undeclared"),
            ("void f() { int x = 1; int x = 2; }", "redeclaration"),
            ("void f() { return 1; }", "void function"),
            ("int f() { return; }", "must return"),
            ("int f() { return 1.5; }", "cannot convert"),
            ("void f() { if (1) {} }", "condition must be bool"),
            ("void f() { while (2.0) {} }", "condition must be bool"),
            ("void f() { break; }", "outside of a loop"),
            ("void f() { continue; }", "outside of a loop"),
            ("void f(int x) { x[0] = 1; }", "indexing a non-array"),
            ("void f(double a[]) { a = a; }", "assign to an array"),
            ("void f(double a[]) { a[1.5] = 0.0; }", "index must be int"),
            ("void f() { int y = 1.0 % 2.0; }", "requires int"),
            ("void f() { bool b = 1 && true; }", "requires bool"),
            ("void f() { int z = sqrt(4.0); }", "cannot convert"),
            ("void f() { sqrt(true); }", "no matching overload"),
            ("void f() { g(); }", "undeclared function"),
            ("int g() { return 1; } void f() { g(1); }", "expects 0 arguments"),
            ("double sqrt(double x) { return x; }", "shadows a builtin"),
            ("int g() { return 1; } int g() { return 2; }", "redefinition"),
            ("void f() { int x = true + 1; }", "non-numeric"),
            ("void f() { bool b = true < false; }", "ordering comparison"),
            ("void f() { 1 + 2; }", "must be a call"),
            ("bool flag;", "bool globals"),
        ],
    )
    def test_rejected(self, source, pattern):
        with pytest.raises(SemaError, match=pattern):
            analyze(parse(source))

    def test_int_to_double_promotion_accepted(self):
        analyze(parse("double f(int x) { return x + 1.5; }"))

    def test_call_arg_promotion(self):
        analyze(parse("void f() { double s = sqrt(4); }"))


class TestExecution:
    def test_arithmetic_program(self):
        result, _ = compile_and_run(
            "int main() { int a = 6; int b = 7; return a * b; }"
        )
        assert result.value == 42

    def test_float_promotion(self):
        result, _ = compile_and_run("double main() { int n = 3; return n / 2.0; }")
        assert result.value == 1.5

    def test_int_division_truncates(self):
        result, _ = compile_and_run("int main() { return -7 / 2; }")
        assert result.value == -3

    def test_loop_sum(self):
        result, _ = compile_and_run(
            """
            int main() {
                int s = 0;
                for (int i = 1; i <= 100; i = i + 1) { s += i; }
                return s;
            }
            """
        )
        assert result.value == 5050

    def test_while_with_break_continue(self):
        result, _ = compile_and_run(
            """
            int main() {
                int s = 0;
                int i = 0;
                while (true) {
                    i = i + 1;
                    if (i > 10) break;
                    if (i % 2 == 0) continue;
                    s += i;  // 1+3+5+7+9
                }
                return s;
            }
            """
        )
        assert result.value == 25

    def test_nested_loops(self):
        result, _ = compile_and_run(
            """
            int main() {
                int c = 0;
                for (int i = 0; i < 5; i = i + 1)
                    for (int j = 0; j < i; j = j + 1)
                        c = c + 1;
                return c;
            }
            """
        )
        assert result.value == 10

    def test_short_circuit_and_skips_rhs(self):
        # RHS would trap (division by zero) if evaluated.
        result, _ = compile_and_run(
            """
            int main() {
                int zero = 0;
                if (zero != 0 && 10 / zero > 0) { return 1; }
                return 2;
            }
            """
        )
        assert result.value == 2

    def test_short_circuit_or(self):
        result, _ = compile_and_run(
            """
            int main() {
                int zero = 0;
                if (zero == 0 || 10 / zero > 0) { return 1; }
                return 2;
            }
            """
        )
        assert result.value == 1

    def test_arrays_and_functions(self):
        result, _ = compile_and_run(
            """
            double dot(double a[], double b[], int n) {
                double s = 0.0;
                for (int i = 0; i < n; i = i + 1) { s = s + a[i] * b[i]; }
                return s;
            }
            double main() {
                double x[8];
                double y[8];
                for (int i = 0; i < 8; i = i + 1) { x[i] = (double)i; y[i] = 2.0; }
                return dot(x, y, 8);
            }
            """
        )
        assert result.value == 56.0

    def test_global_arrays_and_output(self):
        source = """
            int n = 4;
            output double result[8];
            void main() {
                for (int i = 0; i < n; i = i + 1) { result[i] = (double)(i * i); }
            }
        """
        result, interp = compile_and_run(source)
        assert interp.read_global("result")[:4] == [0.0, 1.0, 4.0, 9.0]
        outs = interp.module.output_globals()
        assert [g.name for g in outs] == ["result"]

    def test_global_override_changes_behaviour(self):
        source = """
            int n = 4;
            output double result[8];
            void main() {
                for (int i = 0; i < n; i = i + 1) { result[i] = 1.0; }
            }
        """
        result, interp = compile_and_run(source, overrides={"n": 6})
        assert sum(interp.read_global("result")) == 6.0

    def test_recursion(self):
        result, _ = compile_and_run(
            """
            int fib(int n) {
                if (n < 2) return n;
                return fib(n - 1) + fib(n - 2);
            }
            int main() { return fib(12); }
            """
        )
        assert result.value == 144

    def test_intrinsics(self):
        result, _ = compile_and_run(
            """
            double main() {
                double a = sqrt(16.0);
                double b = pow(2.0, 10.0);
                double c = fabs(-3.0);
                double d = fmax(a, c);
                return a + b + c + d;  // 4 + 1024 + 3 + 4
            }
            """
        )
        assert result.value == 1035.0

    def test_casts(self):
        result, _ = compile_and_run(
            """
            int main() {
                double x = 7.9;
                int i = (int)x;       // truncation
                bool b = i == 7;
                return i + (int)b;    // 7 + 1
            }
            """
        )
        assert result.value == 8

    def test_bitwise_lcg(self):
        """An LCG PRNG — the idiom the IS workload uses for key generation."""
        result, _ = compile_and_run(
            """
            int main() {
                int state = 12345;
                int acc = 0;
                for (int i = 0; i < 10; i = i + 1) {
                    state = (state * 1103515245 + 12345) % 2147483648;
                    if (state < 0) state = -state;
                    acc = acc ^ (state >> 16);
                }
                return acc & 1023;
            }
            """
        )
        assert 0 <= result.value < 1024

    def test_unoptimized_matches_optimized(self):
        source = """
            double main() {
                double acc = 0.0;
                for (int i = 1; i <= 50; i = i + 1) {
                    acc = acc + 1.0 / (double)i;
                }
                return acc;
            }
        """
        opt, _ = compile_and_run(source, optimize=True)
        raw, _ = compile_and_run(source, optimize=False)
        assert opt.value == raw.value

    def test_optimized_is_faster(self):
        source = """
            int main() {
                int s = 0;
                for (int i = 0; i < 200; i = i + 1) { s += i; }
                return s;
            }
        """
        from repro import compile_source as cs

        opt_cycles = run_module(cs(source, optimize=True))[0].cycles
        raw_cycles = run_module(cs(source, optimize=False))[0].cycles
        assert opt_cycles < raw_cycles

    def test_missing_return_traps(self):
        module = compile_source("int main() { int x = 1; }", optimize=False)
        result, _ = run_module(module)
        assert result.status == "trap"

    def test_print(self):
        _, interp = compile_and_run(
            "void main() { print(1.5); print(42); }"
        )
        assert interp.output_log == [1.5, 42]

    def test_mpi_serial_semantics(self):
        result, _ = compile_and_run(
            """
            double main() {
                int r = mpi_rank();
                double s = mpi_allreduce_sum(2.5);
                mpi_barrier();
                return (double)r + s;
            }
            """
        )
        assert result.value == 2.5

    def test_dead_code_after_return_is_harmless(self):
        result, _ = compile_and_run(
            "int main() { return 1; int x = 2; x += 1; }"
        )
        assert result.value == 1

    def test_mem2reg_applied_to_frontend_output(self):
        module = compile_source(
            "int main() { int a = 1; int b = a + 2; return b * 3; }"
        )
        opcodes = {i.opcode for i in module.instructions()}
        assert "alloca" not in opcodes
