"""Unit tests for IR values, instructions, blocks, functions, and modules."""

import pytest

from repro.ir import (
    ArrayType,
    BinaryOperator,
    BranchInst,
    Constant,
    F64,
    GEPInst,
    I1,
    I32,
    I64,
    IRBuilder,
    Module,
    PhiNode,
    UndefValue,
    VOID,
    const_bool,
    const_float,
    const_int,
    print_function,
    print_module,
    verify_module,
)
from repro.ir.verifier import VerificationError


def make_identity():
    """i64 @identity(i64 %x) { ret %x }"""
    m = Module("t")
    fn = m.add_function("identity", I64, [I64], ["x"])
    b = IRBuilder(fn.add_block("entry"))
    b.ret(fn.args[0])
    return m, fn


class TestConstants:
    def test_int_constant(self):
        c = const_int(42)
        assert c.value == 42 and c.type == I64

    def test_int_constant_range_checked(self):
        with pytest.raises(ValueError):
            Constant(I32, 2**40)

    def test_unsigned_representation_canonicalized(self):
        c = Constant(I32, 2**32 - 1)
        assert c.value == -1

    def test_bool_constant(self):
        assert const_bool(True).value == 1
        assert const_bool(False).value == 0

    def test_float_constant(self):
        c = const_float(1.5)
        assert c.value == 1.5 and c.type == F64

    def test_constant_equality_and_hash(self):
        assert const_int(3) == const_int(3)
        assert const_int(3) != const_int(4)
        assert const_int(3) != const_float(3.0)
        assert len({const_int(3), const_int(3), const_int(4)}) == 2

    def test_nan_constant_equality(self):
        nan = const_float(float("nan"))
        assert nan == const_float(float("nan"))


class TestUseDefChains:
    def test_uses_tracked(self):
        m = Module("t")
        fn = m.add_function("f", I64, [I64, I64], ["a", "b"])
        b = IRBuilder(fn.add_block("entry"))
        s = b.add(fn.args[0], fn.args[1])
        t = b.mul(s, s)
        b.ret(t)
        assert (t, 0) in s.uses and (t, 1) in s.uses
        assert s.users == [t]
        assert t.users[0].opcode == "ret"

    def test_replace_all_uses_with(self):
        m = Module("t")
        fn = m.add_function("f", I64, [I64, I64], ["a", "b"])
        b = IRBuilder(fn.add_block("entry"))
        s = b.add(fn.args[0], fn.args[1])
        t = b.mul(s, s)
        b.ret(t)
        s.replace_all_uses_with(fn.args[0])
        assert not s.is_used()
        assert t.operands == [fn.args[0], fn.args[0]]
        verify_module(m)  # s is now dead but the module is still valid

    def test_erase_requires_no_uses(self):
        m = Module("t")
        fn = m.add_function("f", I64, [I64], ["a"])
        b = IRBuilder(fn.add_block("entry"))
        s = b.add(fn.args[0], fn.args[0])
        b.ret(s)
        with pytest.raises(RuntimeError):
            s.erase()
        s.replace_all_uses_with(fn.args[0])
        s.erase()
        assert s not in fn.entry.instructions


class TestInstructionTyping:
    def test_binop_type_mismatch_rejected(self):
        with pytest.raises(TypeError):
            BinaryOperator("add", const_int(1, I64), const_int(1, I32))

    def test_fp_op_on_ints_rejected(self):
        with pytest.raises(TypeError):
            BinaryOperator("fadd", const_int(1), const_int(2))

    def test_int_op_on_floats_rejected(self):
        with pytest.raises(TypeError):
            BinaryOperator("add", const_float(1.0), const_float(2.0))

    def test_binop_category_predicates(self):
        add = BinaryOperator("add", const_int(1), const_int(2))
        fmul = BinaryOperator("fmul", const_float(1.0), const_float(2.0))
        srem = BinaryOperator("srem", const_int(1), const_int(2))
        xor = BinaryOperator("xor", const_int(1), const_int(2))
        assert add.is_add_sub() and not add.is_mul_div()
        assert fmul.is_mul_div() and not fmul.is_add_sub()
        assert srem.is_remainder()
        assert xor.is_logical()

    def test_gep_requires_pointer_base(self):
        with pytest.raises(TypeError):
            GEPInst(const_int(0), const_int(1))

    def test_branch_condition_must_be_i1(self):
        m = Module("t")
        fn = m.add_function("f", VOID, [])
        b1 = fn.add_block("a")
        b2 = fn.add_block("b")
        with pytest.raises(TypeError):
            BranchInst(const_int(1, I64), b1, b2)

    def test_phi_type_checked(self):
        m = Module("t")
        fn = m.add_function("f", I64, [])
        blk = fn.add_block("entry")
        phi = PhiNode(I64)
        with pytest.raises(TypeError):
            phi.add_incoming(const_float(1.0), blk)

    def test_builder_cast_validation(self):
        m = Module("t")
        fn = m.add_function("f", F64, [I64], ["x"])
        b = IRBuilder(fn.add_block("entry"))
        v = b.sitofp(fn.args[0])
        b.ret(v)
        with pytest.raises(TypeError):
            b.cast("sitofp", v, I64)  # float -> int is not sitofp
        verify_module(m)


class TestBlocksAndFunctions:
    def test_terminated_block_rejects_append(self):
        m, fn = make_identity()
        b = IRBuilder(fn.entry)
        with pytest.raises(RuntimeError):
            b.add(fn.args[0], fn.args[0])

    def test_successors_predecessors(self):
        m = Module("t")
        fn = m.add_function("f", VOID, [I1], ["c"])
        entry = fn.add_block("entry")
        left = fn.add_block("left")
        right = fn.add_block("right")
        exit_ = fn.add_block("exit")
        b = IRBuilder(entry)
        b.cond_br(fn.args[0], left, right)
        IRBuilder(left).br(exit_)
        IRBuilder(right).br(exit_)
        IRBuilder(exit_).ret()
        assert entry.successors() == [left, right]
        assert set(exit_.predecessors()) == {left, right}
        verify_module(m)

    def test_unique_block_names(self):
        m = Module("t")
        fn = m.add_function("f", VOID, [])
        a = fn.add_block("body")
        b = fn.add_block("body")
        assert a.name != b.name

    def test_instruction_count(self):
        m, fn = make_identity()
        assert fn.instruction_count == 1
        assert m.static_instruction_count == 1

    def test_phi_must_lead_block(self):
        m = Module("t")
        fn = m.add_function("f", I64, [I64], ["x"])
        blk = fn.add_block("entry")
        b = IRBuilder(blk)
        b.add(fn.args[0], fn.args[0])
        with pytest.raises(RuntimeError):
            blk.append(PhiNode(I64))


class TestModule:
    def test_duplicate_function_rejected(self):
        m = Module("t")
        m.add_function("f", VOID, [])
        with pytest.raises(ValueError):
            m.add_function("f", VOID, [])

    def test_declare_idempotent(self):
        m = Module("t")
        f1 = m.declare_function("sqrt", F64, [F64])
        f2 = m.declare_function("sqrt", F64, [F64])
        assert f1 is f2

    def test_declare_conflicting_signature_rejected(self):
        m = Module("t")
        m.declare_function("sqrt", F64, [F64])
        with pytest.raises(ValueError):
            m.declare_function("sqrt", F64, [F64, F64])

    def test_globals(self):
        m = Module("t")
        g = m.add_global("data", ArrayType(F64, 4), [1.0, 2.0], is_output=True)
        assert g.cell_count == 4
        assert g.initial_cells() == [1.0, 2.0, 0.0, 0.0]
        assert m.output_globals() == [g]
        assert g.type.pointee == F64

    def test_scalar_global_initializer(self):
        m = Module("t")
        g = m.add_global("n", I64, 7)
        assert g.initial_cells() == [7]


class TestVerifier:
    def test_valid_module_passes(self):
        m, _ = make_identity()
        verify_module(m)

    def test_unterminated_block_caught(self):
        m = Module("t")
        fn = m.add_function("f", VOID, [])
        fn.add_block("entry")
        with pytest.raises(VerificationError, match="terminator"):
            verify_module(m)

    def test_use_before_def_caught(self):
        m = Module("t")
        fn = m.add_function("f", I64, [I64], ["x"])
        blk = fn.add_block("entry")
        b = IRBuilder(blk)
        v = b.add(fn.args[0], fn.args[0])
        w = b.mul(v, v)
        b.ret(w)
        # Move w before v by hand to break dominance.
        blk.remove(w)
        blk.insert(0, w)
        with pytest.raises(VerificationError, match="before defined"):
            verify_module(m)

    def test_phi_mismatched_preds_caught(self):
        m = Module("t")
        fn = m.add_function("f", I64, [I1], ["c"])
        entry = fn.add_block("entry")
        exit_ = fn.add_block("exit")
        IRBuilder(entry).br(exit_)
        b = IRBuilder(exit_)
        phi = b.phi(I64)
        # Claims an incoming edge from exit_ itself, which is not a pred.
        phi.add_incoming(const_int(1), exit_)
        b.ret(phi)
        with pytest.raises(VerificationError, match="phi incoming"):
            verify_module(m)


class TestPrinter:
    def test_print_identity(self):
        m, fn = make_identity()
        text = print_function(fn)
        assert "define i64 @identity(i64 %x)" in text
        assert "ret i64 %x" in text

    def test_print_module_includes_globals_and_declares(self):
        m = Module("t")
        m.add_global("out", ArrayType(F64, 2), is_output=True)
        m.declare_function("sqrt", F64, [F64])
        fn = m.add_function("main", VOID, [])
        IRBuilder(fn.add_block("entry")).ret()
        text = print_module(m)
        assert "@out = global [2 x f64] output" in text
        assert "declare f64 @sqrt(f64)" in text
        assert "define void @main()" in text

    def test_print_numbered_temporaries(self):
        m = Module("t")
        fn = m.add_function("f", I64, [I64], ["x"])
        b = IRBuilder(fn.add_block("entry"))
        v = b.add(fn.args[0], fn.args[0])
        b.ret(v)
        text = print_function(fn)
        assert "%1 = add i64 %x, %x" in text

    def test_print_undef(self):
        u = UndefValue(I64)
        assert u.ref() == "undef"
