"""Tests for classifier persistence and function-scoped protection."""

import numpy as np
import pytest

from repro import compile_source
from repro.ml import (
    SVC,
    StandardScaler,
    load_classifier,
    save_classifier,
    scaler_from_dict,
    scaler_to_dict,
    svc_from_dict,
    svc_to_dict,
)
from repro.protect import IpasSelector


def trained_pair(seed=0):
    rng = np.random.RandomState(seed)
    X = rng.randn(60, 5)
    y = (X[:, 0] + X[:, 1] > 0).astype(int)
    scaler = StandardScaler().fit(X)
    model = SVC(C=10.0, gamma=0.3).fit(scaler.transform(X), y)
    return model, scaler, X, y


class TestSvcSerialization:
    def test_round_trip_predictions_identical(self):
        model, scaler, X, y = trained_pair()
        restored = svc_from_dict(svc_to_dict(model))
        Xs = scaler.transform(X)
        assert np.array_equal(model.predict(Xs), restored.predict(Xs))
        assert np.allclose(
            model.decision_function(Xs), restored.decision_function(Xs)
        )

    def test_constant_class_round_trip(self):
        X = np.zeros((5, 2))
        model = SVC().fit(X, np.ones(5, dtype=int))
        restored = svc_from_dict(svc_to_dict(model))
        assert np.all(restored.predict(X) == 1)

    def test_unfitted_rejected(self):
        with pytest.raises(ValueError):
            svc_to_dict(SVC())

    def test_wrong_kind_rejected(self):
        with pytest.raises(ValueError):
            svc_from_dict({"kind": "tree"})


class TestScalerSerialization:
    def test_round_trip(self):
        _, scaler, X, _ = trained_pair()
        restored = scaler_from_dict(scaler_to_dict(scaler))
        assert np.allclose(scaler.transform(X), restored.transform(X))

    def test_unfitted_rejected(self):
        with pytest.raises(ValueError):
            scaler_to_dict(StandardScaler())


class TestFilePersistence:
    def test_save_load_with_metadata(self, tmp_path):
        model, scaler, X, y = trained_pair()
        path = tmp_path / "ipas_model.json"
        save_classifier(
            path, model, scaler, metadata={"workload": "hpccg", "seed": 0}
        )
        restored_model, restored_scaler, metadata = load_classifier(path)
        assert metadata == {"workload": "hpccg", "seed": 0}
        Xs = scaler.transform(X)
        assert np.array_equal(model.predict(Xs), restored_model.predict(Xs))
        assert restored_scaler is not None

    def test_save_without_scaler(self, tmp_path):
        model, _, X, _ = trained_pair()
        path = tmp_path / "bare.json"
        save_classifier(path, model)
        restored_model, restored_scaler, metadata = load_classifier(path)
        assert restored_scaler is None
        assert metadata == {}

    def test_loaded_model_drives_selector(self, tmp_path):
        """A persisted classifier protects a module in a later session."""
        module = compile_source(
            """
            output double r[1];
            double work(double x) { return x * x + 1.0; }
            void main() { r[0] = work(3.0); }
            """
        )
        from repro.features import FeatureExtractor, NUM_FEATURES
        from repro.protect import Selector

        eligible = Selector.eligible(module)
        X = FeatureExtractor(module).extract_many(eligible)
        y = np.array([1] * len(eligible))
        y[0] = 0  # at least two classes
        scaler = StandardScaler().fit(X)
        model = SVC(C=1.0, gamma=0.1).fit(scaler.transform(X), y)
        path = tmp_path / "m.json"
        save_classifier(path, model, scaler)

        loaded_model, loaded_scaler, _ = load_classifier(path)
        fresh = IpasSelector(loaded_model, loaded_scaler)
        original = IpasSelector(model, scaler)
        assert [id(i) for i in fresh.select(module)] == [
            id(i) for i in original.select(module)
        ]


class TestFunctionScope:
    SOURCE = """
    output double r[2];
    double hot(double x) { return x * x * 2.0; }
    double cold(double x) { return x + 1.0; }
    void main() {
        r[0] = hot(2.0);
        r[1] = cold(3.0);
    }
    """

    def test_scope_restricts_selection(self):
        module = compile_source(self.SOURCE)

        class All:
            def predict(self, X):
                return np.ones(len(X), dtype=np.int64)

        scoped = IpasSelector(All(), function_scope=["hot"])
        selected = scoped.select(module)
        assert selected
        assert all(i.function.name == "hot" for i in selected)

    def test_empty_scope_selects_nothing(self):
        module = compile_source(self.SOURCE)

        class All:
            def predict(self, X):
                return np.ones(len(X), dtype=np.int64)

        scoped = IpasSelector(All(), function_scope=["nonexistent"])
        assert scoped.select(module) == []
