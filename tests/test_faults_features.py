"""Tests for the fault model, campaigns, and Table-1 feature extraction."""

import pytest

from repro import compile_source
from repro.faults import (
    Campaign,
    FaultSite,
    Outcome,
    OutcomeCounts,
    injectable_instructions,
    is_injectable,
    margin_of_error,
    result_bits,
    soc_reduction_percent,
)
from repro.features import FEATURE_CATEGORIES, FEATURE_NAMES, NUM_FEATURES, FeatureExtractor
from repro.interp import Interpreter
from repro.ir import (
    ArrayType,
    F64,
    I64,
    IRBuilder,
    Module,
    const_float,
    const_int,
    verify_module,
)

KERNEL = """
int n = 16;
output double result[32];

double work(double a[], int n) {
    double s = 0.0;
    for (int i = 0; i < n; i = i + 1) {
        s = s + a[i] * a[i];
    }
    return sqrt(s);
}

void main() {
    double x[32];
    for (int i = 0; i < n; i = i + 1) { x[i] = (double)(i + 1); }
    result[0] = work(x, n);
}
"""


@pytest.fixture(scope="module")
def kernel_interp():
    return Interpreter(compile_source(KERNEL, name="kernel"))


class TestFaultModel:
    def test_injectable_taxonomy(self):
        m = Module("t")
        g = m.add_global("data", ArrayType(F64, 4))
        fn = m.add_function("main", F64, [])
        b = IRBuilder(fn.add_block("entry"))
        add = b.add(const_int(1), const_int(2))
        gep = b.gep(g, add)
        store = b.store(const_float(1.0), gep)
        load = b.load(gep)
        cast = b.sitofp(add)
        cmp = b.fcmp("olt", load, cast)
        sel = b.select(cmp, load, cast)
        call = b.call_intrinsic("sqrt", [sel])
        ret = b.ret(call)
        verify_module(m)
        assert is_injectable(add)
        assert is_injectable(gep)
        assert is_injectable(cast)
        assert is_injectable(cmp)
        assert is_injectable(sel)
        assert is_injectable(call)
        assert not is_injectable(store)
        assert not is_injectable(load)
        assert not is_injectable(ret)

    def test_phis_and_allocas_excluded(self):
        module = compile_source(KERNEL)
        for inst in injectable_instructions(module):
            assert inst.opcode not in ("phi", "alloca", "load", "store", "br", "ret")

    def test_result_bits(self):
        m = Module("t")
        fn = m.add_function("main", I64, [])
        b = IRBuilder(fn.add_block("entry"))
        add = b.add(const_int(1), const_int(2))
        cmp = b.icmp("eq", add, add)
        sel = b.select(cmp, add, add)
        b.ret(sel)
        assert result_bits(add) == 64
        assert result_bits(cmp) == 1

    def test_fault_site_validation(self):
        m = Module("t")
        fn = m.add_function("main", I64, [])
        b = IRBuilder(fn.add_block("entry"))
        add = b.add(const_int(1), const_int(2))
        b.ret(add)
        with pytest.raises(ValueError):
            FaultSite(add, 0, 1)  # occurrence is 1-based
        with pytest.raises(ValueError):
            FaultSite(add, 1, 64)  # bit out of range
        site = FaultSite(add, 1, 63)
        assert site.as_injection() == (add, 1, 63)


class TestOutcomes:
    def test_counts_and_fractions(self):
        counts = OutcomeCounts()
        for outcome in [Outcome.SOC, Outcome.MASKED, Outcome.MASKED, Outcome.CRASH]:
            counts.record(outcome)
        assert counts.total == 4
        assert counts.soc_fraction == 0.25
        assert counts.masked_fraction == 0.5
        assert counts.symptom_fraction == 0.25
        assert counts.as_dict()["soc"] == 0.25

    def test_soc_reduction(self):
        assert soc_reduction_percent(0.10, 0.01) == pytest.approx(90.0)
        assert soc_reduction_percent(0.10, 0.10) == pytest.approx(0.0)
        assert soc_reduction_percent(0.0, 0.0) == 0.0

    def test_margin_of_error_matches_paper_scale(self):
        # Paper §6.2: ~1024 runs, SOC fractions 2.6-10.8% -> margins 0.7-1.4%.
        moe = margin_of_error(0.05, 1024)
        assert 0.005 < moe < 0.02

    def test_margin_of_error_validation(self):
        with pytest.raises(ValueError):
            margin_of_error(0.5, 100, confidence=0.5)


class TestCampaign:
    def test_golden_run(self, kernel_interp):
        campaign = Campaign(kernel_interp)
        campaign.prepare()
        assert campaign.golden_cycles > 0
        assert campaign.total_dynamic_injectable > 0
        assert "result" in campaign.golden_capture

    def test_campaign_outcomes_sum(self, kernel_interp):
        campaign = Campaign(kernel_interp)
        result = campaign.run(60, seed=1)
        assert len(result) == 60
        assert result.counts.total == 60
        # Fault-free determinism: all four categories are possible but at
        # least some faults must be masked or SOC in this FP-heavy kernel.
        assert result.counts.masked_fraction + result.counts.soc_fraction > 0

    def test_campaign_is_deterministic(self, kernel_interp):
        c1 = Campaign(kernel_interp).run(30, seed=7)
        c2 = Campaign(kernel_interp).run(30, seed=7)
        assert [r.outcome for r in c1.records] == [r.outcome for r in c2.records]

    def test_different_seeds_differ(self, kernel_interp):
        c1 = Campaign(kernel_interp).run(30, seed=1)
        c2 = Campaign(kernel_interp).run(30, seed=2)
        sites1 = [(id(r.site.instruction), r.site.occurrence, r.site.bit) for r in c1.records]
        sites2 = [(id(r.site.instruction), r.site.occurrence, r.site.bit) for r in c2.records]
        assert sites1 != sites2

    def test_sample_site_occurrence_within_count(self, kernel_interp):
        import random

        campaign = Campaign(kernel_interp)
        campaign.prepare()
        rng = random.Random(3)
        for _ in range(50):
            site = campaign.sample_site(rng)
            assert site.occurrence >= 1
            assert 0 <= site.bit < result_bits(site.instruction)

    def test_records_with_outcome(self, kernel_interp):
        result = Campaign(kernel_interp).run(40, seed=5)
        masked = result.records_with_outcome(Outcome.MASKED)
        assert all(r.outcome is Outcome.MASKED for r in masked)


class TestFeatures:
    def test_feature_vector_shape(self):
        module = compile_source(KERNEL)
        fx = FeatureExtractor(module)
        insts = injectable_instructions(module)
        X = fx.extract_many(insts)
        assert X.shape == (len(insts), NUM_FEATURES)
        assert len(FEATURE_NAMES) == NUM_FEATURES == 31

    def test_feature_categories_partition(self):
        indices = sorted(
            i for idxs in FEATURE_CATEGORIES.values() for i in idxs
        )
        assert indices == list(range(NUM_FEATURES))

    def test_instruction_category_flags(self):
        module = compile_source(KERNEL)
        fx = FeatureExtractor(module)
        for inst in injectable_instructions(module):
            v = fx.extract(inst)
            if inst.opcode in ("fadd", "fmul", "add", "mul"):
                assert v[0] == 1.0  # is binary op
            if inst.opcode == "gep":
                assert v[8] == 1.0
                assert v[0] == 0.0
            if inst.opcode == "call":
                assert v[5] == 1.0

    def test_result_bytes_feature(self):
        module = compile_source(KERNEL)
        fx = FeatureExtractor(module)
        for inst in injectable_instructions(module):
            v = fx.extract(inst)
            assert v[11] == inst.type.byte_size

    def test_loop_membership_feature(self):
        module = compile_source(KERNEL)
        fx = FeatureExtractor(module)
        work = module.get_function("work")
        loop_values = set()
        for inst in work.instructions():
            if inst.opcode == "fmul":
                loop_values.add(fx.extract(inst)[16])
        assert loop_values == {1.0}  # the multiply lives in the loop

    def test_function_features(self):
        module = compile_source(KERNEL)
        fx = FeatureExtractor(module)
        work = module.get_function("work")
        inst = next(i for i in work.instructions() if i.opcode == "fmul")
        v = fx.extract(inst)
        assert v[20] == work.instruction_count
        assert v[21] == work.block_count
        assert v[23] == 1.0  # work returns a value

    def test_forward_slice_features_nonzero_for_producers(self):
        module = compile_source(KERNEL)
        fx = FeatureExtractor(module)
        work = module.get_function("work")
        inst = next(i for i in work.instructions() if i.opcode == "fmul")
        v = fx.extract(inst)
        assert v[24] > 0  # the product flows onward

    def test_extract_requires_attached_instruction(self):
        from repro.ir import BinaryOperator, const_int as ci

        module = compile_source(KERNEL)
        fx = FeatureExtractor(module)
        dangling = BinaryOperator("add", ci(1), ci(2))
        with pytest.raises(ValueError):
            fx.extract(dangling)


class TestCoverageFeatures:
    def test_feature_names_compose(self):
        from repro.features import (
            COVERAGE_FEATURE_NAMES,
            STATIC_RISK_FEATURE_NAMES,
            feature_names,
        )

        assert feature_names() == FEATURE_NAMES
        assert feature_names(include_static_risk=True) == (
            FEATURE_NAMES + STATIC_RISK_FEATURE_NAMES
        )
        assert feature_names(include_coverage=True) == (
            FEATURE_NAMES + COVERAGE_FEATURE_NAMES
        )
        both = feature_names(
            include_static_risk=True, include_coverage=True
        )
        assert both == (
            FEATURE_NAMES + STATIC_RISK_FEATURE_NAMES + COVERAGE_FEATURE_NAMES
        )

    def test_coverage_features_on_protected_module(self):
        from repro.features import feature_names
        from repro.protect import (
            FullDuplicationSelector,
            duplicate_instructions,
        )

        module = compile_source(KERNEL)
        duplicate_instructions(
            module, FullDuplicationSelector().select(module)
        )
        fx = FeatureExtractor(module, include_coverage=True)
        names = feature_names(include_coverage=True)
        esc_idx = names.index("static_escapes")
        frac_idx = names.index("static_masked_fraction")
        insts = injectable_instructions(module)
        X = fx.extract_many(insts)
        assert X.shape == (len(insts), len(names))
        assert set(X[:, esc_idx]) <= {0.0, 1.0}
        assert all(0.0 <= f <= 1.0 for f in X[:, frac_idx])
        # Full duplication: some sites must be statically covered.
        assert (X[:, esc_idx] == 0.0).any()

    def test_unprotected_module_mostly_escapes(self):
        from repro.features import feature_names

        module = compile_source(KERNEL)
        fx = FeatureExtractor(module, include_coverage=True)
        names = feature_names(include_coverage=True)
        esc_idx = names.index("static_escapes")
        insts = injectable_instructions(module)
        X = fx.extract_many(insts)
        # Without checks nothing can be DETECTED; escapes dominate.
        assert (X[:, esc_idx] == 1.0).sum() > 0
