"""Unit tests for the scil lexer and parser."""

import pytest

from repro.frontend import LexError, ParseError, parse, tokenize
from repro.frontend.ast_nodes import (
    Assign,
    BinaryExpr,
    Block,
    CallExpr,
    CastExpr,
    For,
    FuncDef,
    If,
    IndexExpr,
    IntLiteral,
    Return,
    UnaryExpr,
    VarDecl,
    VarRef,
    While,
)


class TestLexer:
    def test_keywords_and_idents(self):
        toks = tokenize("int foo while whilex")
        kinds = [(t.kind, t.text) for t in toks[:-1]]
        assert kinds == [
            ("keyword", "int"),
            ("ident", "foo"),
            ("keyword", "while"),
            ("ident", "whilex"),
        ]

    def test_numbers(self):
        toks = tokenize("42 3.5 1e3 2.5e-2 7.")
        values = [(t.kind, t.value) for t in toks[:-1]]
        assert values == [
            ("int", 42),
            ("float", 3.5),
            ("float", 1000.0),
            ("float", 0.025),
            ("float", 7.0),
        ]

    def test_operators_longest_match(self):
        toks = tokenize("a<=b<<c&&d")
        texts = [t.text for t in toks[:-1]]
        assert texts == ["a", "<=", "b", "<<", "c", "&&", "d"]

    def test_comments_skipped(self):
        toks = tokenize("a // comment\n b /* multi\nline */ c")
        assert [t.text for t in toks[:-1]] == ["a", "b", "c"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError, match="unterminated"):
            tokenize("a /* oops")

    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")

    def test_locations(self):
        toks = tokenize("a\n  b")
        assert toks[0].location.line == 1
        assert toks[1].location.line == 2
        assert toks[1].location.column == 3

    def test_eof_token(self):
        assert tokenize("")[0].kind == "eof"


class TestParser:
    def test_minimal_function(self):
        prog = parse("void main() { }")
        assert len(prog.functions) == 1
        fn = prog.functions[0]
        assert fn.name == "main" and fn.return_type == "void"
        assert fn.params == [] and fn.body.statements == []

    def test_params_including_arrays(self):
        prog = parse("double dot(double a[], double b[], int n) { return 0.0; }")
        params = prog.functions[0].params
        assert [(p.type_name, p.is_array) for p in params] == [
            ("double", True),
            ("double", True),
            ("int", False),
        ]

    def test_globals(self):
        prog = parse(
            """
            int n = 5;
            output double result[4] = {1.0, 2.0};
            double scale = -2.5;
            """
        )
        g0, g1, g2 = prog.globals
        assert g0.name == "n" and g0.initializer == 5 and not g0.is_output
        assert g1.is_output and g1.array_size == 4 and g1.initializer == [1.0, 2.0]
        assert g2.initializer == -2.5

    def test_precedence(self):
        prog = parse("int f() { return 1 + 2 * 3; }")
        ret = prog.functions[0].body.statements[0]
        assert isinstance(ret, Return)
        add = ret.value
        assert isinstance(add, BinaryExpr) and add.op == "+"
        assert isinstance(add.rhs, BinaryExpr) and add.rhs.op == "*"

    def test_logical_precedence_lower_than_cmp(self):
        prog = parse("bool f() { return 1 < 2 && 3 < 4; }")
        e = prog.functions[0].body.statements[0].value
        assert e.op == "&&"
        assert e.lhs.op == "<" and e.rhs.op == "<"

    def test_shift_and_bitwise(self):
        prog = parse("int f(int x) { return x << 2 | x >> 1 & 3; }")
        e = prog.functions[0].body.statements[0].value
        assert e.op == "|"  # | binds looser than &

    def test_unary_and_cast(self):
        prog = parse("int f(double x) { return -(int)x; }")
        e = prog.functions[0].body.statements[0].value
        assert isinstance(e, UnaryExpr) and e.op == "-"
        assert isinstance(e.operand, CastExpr) and e.operand.target == "int"

    def test_parenthesized_expr_not_cast(self):
        prog = parse("int f(int x) { return (x) + 1; }")
        e = prog.functions[0].body.statements[0].value
        assert isinstance(e, BinaryExpr) and e.op == "+"

    def test_call_and_index(self):
        prog = parse("double f(double a[]) { return sqrt(a[2]); }")
        call = prog.functions[0].body.statements[0].value
        assert isinstance(call, CallExpr) and call.name == "sqrt"
        assert isinstance(call.args[0], IndexExpr)

    def test_if_else_chain(self):
        prog = parse(
            "int f(int x) { if (x > 0) return 1; else if (x < 0) return -1; else return 0; }"
        )
        if_ = prog.functions[0].body.statements[0]
        assert isinstance(if_, If)
        assert isinstance(if_.else_body, If)

    def test_for_loop_with_decl(self):
        prog = parse("void f() { for (int i = 0; i < 4; i = i + 1) { } }")
        loop = prog.functions[0].body.statements[0]
        assert isinstance(loop, For)
        assert isinstance(loop.init, VarDecl)
        assert isinstance(loop.step, Assign)

    def test_for_loop_empty_clauses(self):
        prog = parse("void f() { for (;;) { break; } }")
        loop = prog.functions[0].body.statements[0]
        assert loop.init is None and loop.condition is None and loop.step is None

    def test_while_with_break_continue(self):
        prog = parse("void f() { while (true) { if (false) break; continue; } }")
        loop = prog.functions[0].body.statements[0]
        assert isinstance(loop, While)

    def test_compound_assignment(self):
        prog = parse("void f() { int x = 0; x += 5; }")
        assign = prog.functions[0].body.statements[1]
        assert isinstance(assign, Assign) and assign.op == "+"

    def test_array_decl_statement(self):
        prog = parse("void f() { double buf[16]; buf[0] = 1.0; }")
        decl = prog.functions[0].body.statements[0]
        assert isinstance(decl, VarDecl) and decl.array_size == 16

    @pytest.mark.parametrize(
        "source",
        [
            "void f( {",
            "void f() { return }",
            "void f() { int; }",
            "int x",  # missing semicolon at top level
            "void f() { 1 = x; }",
            "void f() { for (int i = 0 i < 3;) {} }",
            "void void() {}",
        ],
    )
    def test_syntax_errors(self, source):
        with pytest.raises(ParseError):
            parse(source)

    def test_error_has_location(self):
        with pytest.raises(ParseError) as exc_info:
            parse("void f() {\n  int = 3;\n}")
        assert exc_info.value.location.line == 2
