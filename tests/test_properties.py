"""Property-based tests (hypothesis) on core invariants.

* interpreter/constant-folder agreement on integer and float arithmetic,
* bit-flip helpers are involutions that always change the value,
* differential testing of the frontend: optimized and unoptimized builds of
  randomly generated scil expressions compute identical results,
* the duplication pass preserves semantics for arbitrary protection subsets
  and never speeds the program up,
* ML plumbing invariants (scaler, stratified folds, Eq.-1 F-score bounds).
"""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro import compile_source
from repro.interp import Interpreter, flip_f64, flip_int, run_module
from repro.ir import (
    BinaryOperator,
    I64,
    IRBuilder,
    Module,
    const_float,
    const_int,
    verify_module,
)
from repro.ml import StandardScaler, fscore_eq1, stratified_kfold
from repro.passes import fold_binary
from repro.protect import duplicate_instructions, is_duplicable

I64_MIN = -(2**63)
I64_MAX = 2**63 - 1

i64s = st.integers(min_value=I64_MIN, max_value=I64_MAX)
small_ints = st.integers(min_value=-1000, max_value=1000)
finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e100, max_value=1e100
)


def run_binop(opcode, a, b, type_is_float=False):
    """Execute one binary op through the interpreter (no folding)."""
    from repro.ir import F64

    m = Module("prop")
    value_type = F64 if type_is_float else I64
    ident = m.add_function("ident", value_type, [value_type], ["x"])
    bi = IRBuilder(ident.add_block("entry"))
    bi.ret(ident.args[0])
    fn = m.add_function("main", ident.return_type, [])
    bld = IRBuilder(fn.add_block("entry"))
    ca = const_float(a) if type_is_float else const_int(a)
    cb = const_float(b) if type_is_float else const_int(b)
    # Route through a call so the optimizer could never fold it either.
    va = bld.call(ident, [ca])
    v = bld.binop(opcode, va, cb)
    bld.ret(v)
    verify_module(m)
    return run_module(m)[0]


class TestFoldInterpreterAgreement:
    """fold_binary and the interpreter implement the same arithmetic."""

    @settings(max_examples=60, deadline=None)
    @given(
        st.sampled_from(["add", "sub", "mul", "and", "or", "xor"]),
        i64s,
        i64s,
    )
    def test_int_ops_agree(self, opcode, a, b):
        folded = fold_binary(opcode, const_int(a), const_int(b))
        result = run_binop(opcode, a, b)
        assert result.status == "ok"
        assert result.value == folded.value

    @settings(max_examples=60, deadline=None)
    @given(st.sampled_from(["sdiv", "srem"]), i64s, i64s)
    def test_division_agrees(self, opcode, a, b):
        assume(b != 0)
        folded = fold_binary(opcode, const_int(a), const_int(b))
        result = run_binop(opcode, a, b)
        assert result.status == "ok"
        assert result.value == folded.value

    @settings(max_examples=40, deadline=None)
    @given(
        st.sampled_from(["shl", "lshr", "ashr"]),
        i64s,
        st.integers(min_value=0, max_value=63),
    )
    def test_shifts_agree(self, opcode, a, b):
        folded = fold_binary(opcode, const_int(a), const_int(b))
        result = run_binop(opcode, a, b)
        assert result.status == "ok"
        assert result.value == folded.value

    @settings(max_examples=60, deadline=None)
    @given(
        st.sampled_from(["fadd", "fsub", "fmul", "fdiv"]),
        finite_floats,
        finite_floats,
    )
    def test_float_ops_agree(self, opcode, a, b):
        folded = fold_binary(opcode, const_float(a), const_float(b))
        result = run_binop(opcode, a, b, type_is_float=True)
        assert result.status == "ok"
        if isinstance(folded.value, float) and math.isnan(folded.value):
            assert math.isnan(result.value)
        else:
            assert result.value == folded.value

    @settings(max_examples=60, deadline=None)
    @given(st.sampled_from(["add", "sub", "mul"]), i64s, i64s)
    def test_int_results_stay_in_range(self, opcode, a, b):
        result = run_binop(opcode, a, b)
        assert I64_MIN <= result.value <= I64_MAX


class TestBitFlips:
    @settings(max_examples=80, deadline=None)
    @given(i64s, st.integers(min_value=0, max_value=63))
    def test_int_flip_is_involution(self, value, bit):
        once = flip_int(value, bit, 64)
        assert once != value
        assert flip_int(once, bit, 64) == value
        assert I64_MIN <= once <= I64_MAX

    @settings(max_examples=80, deadline=None)
    @given(finite_floats, st.integers(min_value=0, max_value=63))
    def test_f64_flip_is_involution(self, value, bit):
        once = flip_f64(value, bit)
        twice = flip_f64(once, bit)
        # Compare as bit patterns (NaN-safe).
        import struct

        assert struct.pack("<d", twice) == struct.pack("<d", value)
        assert struct.pack("<d", once) != struct.pack("<d", value)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1),
           st.integers(min_value=0, max_value=31))
    def test_i32_flip_stays_in_range(self, value, bit):
        once = flip_int(value, bit, 32)
        assert -(2**31) <= once <= 2**31 - 1


# -- differential testing of the frontend ------------------------------------


@st.composite
def int_expressions(draw, depth=0):
    """A random scil integer expression over variables a, b, c."""
    if depth >= 3 or draw(st.booleans()):
        leaf = draw(
            st.one_of(
                st.sampled_from(["a", "b", "c"]),
                st.integers(min_value=-50, max_value=50).map(str),
            )
        )
        # Parenthesise negative literals so `- -5` never appears.
        return f"({leaf})" if leaf.startswith("-") else leaf
    op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^"]))
    lhs = draw(int_expressions(depth=depth + 1))
    rhs = draw(int_expressions(depth=depth + 1))
    return f"({lhs} {op} {rhs})"


class TestFrontendDifferential:
    @settings(max_examples=30, deadline=None)
    @given(int_expressions(), small_ints, small_ints, small_ints)
    def test_optimized_matches_unoptimized(self, expr, a, b, c):
        source = f"""
        int pa = {a};
        int pb = {b};
        int pc = {c};
        int main() {{
            int a = pa;
            int b = pb;
            int c = pc;
            return {expr};
        }}
        """
        opt = run_module(compile_source(source, optimize=True))[0]
        raw = run_module(compile_source(source, optimize=False))[0]
        assert opt.status == raw.status == "ok"
        assert opt.value == raw.value

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=30),
        st.integers(min_value=1, max_value=7),
    )
    def test_loop_programs_agree(self, n, step):
        source = f"""
        int main() {{
            int acc = 0;
            for (int i = 0; i < {n}; i = i + {step}) {{
                if (i % 3 == 0) {{ acc += i * 2; }}
                else {{ acc -= i; }}
            }}
            return acc;
        }}
        """
        opt = run_module(compile_source(source, optimize=True))[0]
        raw = run_module(compile_source(source, optimize=False))[0]
        assert opt.value == raw.value
        assert opt.cycles <= raw.cycles


# -- duplication-pass properties ------------------------------------------------

PROPERTY_KERNEL = """
int n = 10;
output double result[2];
double kernel(double a[], int n) {
    double s = 0.0;
    for (int i = 0; i < n; i = i + 1) {
        s = s + a[i] * a[i] - 0.5 * a[i];
    }
    return s;
}
void main() {
    double x[16];
    for (int i = 0; i < n; i = i + 1) { x[i] = (double)(i + 1) * 0.25; }
    result[0] = kernel(x, n);
    result[1] = sqrt(fabs(result[0]));
}
"""


class TestDuplicationProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.data())
    def test_any_selection_preserves_semantics(self, data):
        module = compile_source(PROPERTY_KERNEL)
        eligible = [i for i in module.instructions() if is_duplicable(i)]
        subset = data.draw(st.sets(st.sampled_from(range(len(eligible)))))
        selected = [eligible[i] for i in subset]
        report = duplicate_instructions(module, selected)
        verify_module(module)
        result, interp = run_module(module)
        assert result.status == "ok"

        clean_result, clean_interp = run_module(compile_source(PROPERTY_KERNEL))
        assert interp.read_global("result") == clean_interp.read_global("result")
        assert result.cycles >= clean_result.cycles
        assert report.duplicated == len(selected)

    @settings(max_examples=15, deadline=None)
    @given(st.sets(st.integers(min_value=0, max_value=200), max_size=30))
    def test_more_protection_never_cheaper(self, indices):
        module = compile_source(PROPERTY_KERNEL)
        eligible = [i for i in module.instructions() if is_duplicable(i)]
        subset = sorted(i % len(eligible) for i in indices)
        selected = [eligible[i] for i in sorted(set(subset))]
        duplicate_instructions(module, selected)
        partial_cycles = run_module(module)[0].cycles

        full_module = compile_source(PROPERTY_KERNEL)
        full_eligible = [i for i in full_module.instructions() if is_duplicable(i)]
        duplicate_instructions(full_module, full_eligible)
        full_cycles = run_module(full_module)[0].cycles
        assert partial_cycles <= full_cycles


# -- ML plumbing properties ---------------------------------------------------------


class TestMlProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.lists(st.floats(-1e6, 1e6), min_size=3, max_size=3),
            min_size=2,
            max_size=40,
        )
    )
    def test_scaler_output_standardized(self, rows):
        X = np.array(rows)
        Xs = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Xs))
        assert np.allclose(Xs.mean(axis=0), 0.0, atol=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=1), min_size=10, max_size=100),
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=0, max_value=10),
    )
    def test_stratified_folds_partition(self, labels, k, seed):
        y = np.array(labels)
        folds = stratified_kfold(y, k=k, seed=seed)
        covered = sorted(int(i) for _, test in folds for i in test)
        assert covered == sorted(set(covered))  # disjoint
        if folds:
            for train, test in folds:
                assert len(set(train) & set(test)) == 0

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.integers(0, 1), min_size=2, max_size=50),
        st.lists(st.integers(0, 1), min_size=2, max_size=50),
    )
    def test_fscore_bounds(self, a, b):
        n = min(len(a), len(b))
        score = fscore_eq1(np.array(a[:n]), np.array(b[:n]))
        assert 0.0 <= score <= 1.0

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 1), min_size=4, max_size=50))
    def test_fscore_perfect_on_identity(self, labels):
        y = np.array(labels)
        assume(len(np.unique(y)) == 2)
        assert fscore_eq1(y, y) == 1.0
