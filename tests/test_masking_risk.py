"""Tests for the static SOC-risk model: bit-masking transfer coefficients,
the observability fixpoint, risk assessments, and the StaticRiskSelector."""

import pytest

from repro import compile_source
from repro.analysis import (
    ObservabilityAnalysis,
    StaticRiskModel,
    StaticRiskReport,
    local_absorption,
    operand_transfer,
    static_risk_report,
)
from repro.analysis.masking import ADDRESS_TRANSFER, CMP_TRANSFER
from repro.ir import (
    ArrayType,
    F64,
    I1,
    I32,
    I64,
    IRBuilder,
    Module,
    const_int,
    verify_module,
)
from repro.interp import run_module
from repro.protect import StaticRiskSelector, duplicate_instructions


def build_store_kernel():
    """A module where %v feeds an output store and %c feeds only a cmp."""
    m = Module("t")
    out = m.add_global("out", ArrayType(I64, 4), is_output=True)
    fn = m.add_function("main", I64, [I64], ["x"])
    b = IRBuilder(fn.add_block("entry"))
    v = b.add(fn.args[0], const_int(1), name="v")
    cell = b.gep(out, const_int(0))
    b.store(v, cell)
    c = b.mul(fn.args[0], const_int(3), name="c")
    flag = b.icmp("sgt", c, const_int(10), name="flag")
    picked = b.select(flag, const_int(1), const_int(0))
    b.ret(picked)
    verify_module(m)
    return m, v, c, flag


class TestOperandTransfer:
    def test_cmp_operands_attenuate(self):
        m, v, c, flag = build_store_kernel()
        assert operand_transfer(flag, 0) == CMP_TRANSFER

    def test_store_value_vs_address(self):
        m = Module("t")
        out = m.add_global("o", ArrayType(I64, 2), is_output=True)
        fn = m.add_function("main", I64, [I64], ["x"])
        b = IRBuilder(fn.add_block("entry"))
        cell = b.gep(out, const_int(0))
        store = b.store(fn.args[0], cell)
        b.ret(const_int(0))
        assert operand_transfer(store, 0) == 1.0
        assert operand_transfer(store, 1) == ADDRESS_TRANSFER

    def test_and_mask_popcount(self):
        m = Module("t")
        fn = m.add_function("main", I64, [I64], ["x"])
        b = IRBuilder(fn.add_block("entry"))
        masked = b.and_(fn.args[0], const_int(0xFF))
        b.ret(masked)
        # 8 of 64 bit positions survive the mask.
        assert operand_transfer(masked, 0) == pytest.approx(8 / 64)

    def test_trunc_keeps_dst_over_src_bits(self):
        m = Module("t")
        fn = m.add_function("main", I32, [I64], ["x"])
        b = IRBuilder(fn.add_block("entry"))
        small = b.trunc(fn.args[0], I32)
        b.ret(small)
        assert operand_transfer(small, 0) == pytest.approx(32 / 64)

    def test_phi_transfer_splits_across_edges(self):
        m = Module("t")
        fn = m.add_function("f", I64, [I1], ["c"])
        entry = fn.add_block("entry")
        left = fn.add_block("left")
        right = fn.add_block("right")
        join = fn.add_block("join")
        IRBuilder(entry).cond_br(fn.args[0], left, right)
        IRBuilder(left).br(join)
        IRBuilder(right).br(join)
        b = IRBuilder(join)
        phi = b.phi(I64)
        phi.add_incoming(const_int(1), left)
        phi.add_incoming(const_int(2), right)
        b.ret(phi)
        assert operand_transfer(phi, 0) == pytest.approx(0.5)

    def test_shift_by_constant(self):
        m = Module("t")
        fn = m.add_function("main", I64, [I64], ["x"])
        b = IRBuilder(fn.add_block("entry"))
        shifted = b.lshr(fn.args[0], const_int(16))
        b.ret(shifted)
        assert operand_transfer(shifted, 0) == pytest.approx(48 / 64)

    def test_transfer_bounded(self):
        module = compile_source(
            "output double r[2];\n"
            "void main() {\n"
            "    double s = 0.0;\n"
            "    for (int i = 0; i < 8; i = i + 1) { s = s + (double)i * 0.5; }\n"
            "    r[0] = s; r[1] = sqrt(s);\n"
            "}\n"
        )
        for inst in module.instructions():
            for idx in range(len(inst.operands)):
                assert 0.0 <= operand_transfer(inst, idx) <= 1.0


class TestLocalAbsorption:
    def test_cmp_bound_value_mostly_absorbed(self):
        _, _, c, _ = build_store_kernel()
        assert local_absorption(c) == pytest.approx(1.0 - CMP_TRANSFER)

    def test_stored_value_not_absorbed(self):
        _, v, _, _ = build_store_kernel()
        assert local_absorption(v) == 0.0

    def test_unused_value_fully_absorbed(self):
        m = Module("t")
        fn = m.add_function("main", I64, [I64], ["x"])
        b = IRBuilder(fn.add_block("entry"))
        dead = b.add(fn.args[0], const_int(1))
        b.ret(const_int(0))
        assert local_absorption(dead) == 1.0


class TestObservability:
    def test_output_store_feeder_fully_observable(self):
        m, v, c, _ = build_store_kernel()
        obs = ObservabilityAnalysis(m)
        assert obs.score(v) == pytest.approx(1.0)

    def test_cmp_bound_value_weakly_observable(self):
        m, v, c, _ = build_store_kernel()
        obs = ObservabilityAnalysis(m)
        # c funnels through a comparison and a never-consumed return value,
        # so it must score far below the output-store feeder v.
        assert obs.score(c) < 0.5
        assert obs.score(c) < obs.score(v)

    def test_scores_bounded_on_all_workloads_modules(self):
        module = compile_source(
            "output double r[1];\n"
            "double f(double x) { return x * x; }\n"
            "void main() { r[0] = f(3.0); }\n"
        )
        obs = ObservabilityAnalysis(module)
        for fn in module.defined_functions():
            for inst in fn.instructions():
                if inst.produces_value():
                    assert 0.0 <= obs.score(inst) <= 1.0

    def test_interprocedural_return_channel(self):
        module = compile_source(
            "output double r[1];\n"
            "double square(double x) { return x * x; }\n"
            "void main() { r[0] = square(4.0); }\n"
        )
        obs = ObservabilityAnalysis(module)
        square = module.functions["square"]
        # The formal feeds the returned fmul, which lands in an output store.
        assert obs.score(square.args[0]) > 0.5


class TestRiskModel:
    def test_risk_combines_observability_and_loop_depth(self):
        module = compile_source(
            "output double r[4];\n"
            "void main() {\n"
            "    double straight = 2.0 * 3.0;\n"
            "    r[0] = straight;\n"
            "    for (int i = 0; i < 4; i = i + 1) {\n"
            "        r[i] = (double)i * 1.5;\n"
            "    }\n"
            "}\n",
            optimize=True,
        )
        report = static_risk_report(module)
        assert report.assessments, "module should have duplicable instructions"
        by_depth = {}
        for a in report.assessments:
            by_depth.setdefault(a.loop_depth, []).append(a)
        assert 1 in by_depth, "loop body instructions expected at depth 1"
        for a in report.assessments:
            assert 0.0 <= a.risk <= 1.0
            expected = a.observability * (1.0 - 2.0 ** -(1 + a.loop_depth))
            assert a.risk == pytest.approx(expected)

    def test_report_ranking_helpers(self):
        module, *_ = build_store_kernel()
        report = StaticRiskModel(module).assess_module()
        ranked = report.ranked()
        assert ranked == sorted(ranked, key=lambda a: -a.risk)
        top = report.top_fraction(0.5)
        assert 1 <= len(top) <= len(ranked)
        assert all(a.risk >= ranked[len(top) - 1].risk for a in top)
        threshold = ranked[0].risk
        assert all(a.risk >= threshold for a in report.above(threshold))
        assert report.score_of(ranked[0].instruction) == ranked[0].risk

    def test_assessment_to_dict_round_trips(self):
        module, *_ = build_store_kernel()
        report = static_risk_report(module)
        entry = report.ranked()[0].to_dict()
        for key in (
            "function", "block", "index", "opcode", "name",
            "observability", "absorption", "loop_depth", "risk",
        ):
            assert key in entry

    def test_every_duplicable_instruction_assessed(self):
        from repro.analysis.risk import DUPLICABLE_TYPES
        from repro.workloads import get_workload

        module = get_workload("is").compile()
        report = static_risk_report(module)
        duplicable = [
            inst for inst in module.instructions()
            if isinstance(inst, DUPLICABLE_TYPES)
        ]
        assert len(report.assessments) == len(duplicable)


class TestStaticRiskSelector:
    def test_selects_nonzero_subset(self):
        from repro.workloads import get_workload

        module = get_workload("hpccg").compile()
        selected = StaticRiskSelector().select(module)
        report = static_risk_report(module)
        nonzero = [a for a in report.assessments if a.risk > 0.0]
        assert 0 < len(selected) <= len(nonzero)

    def test_threshold_mode_name_and_monotonicity(self):
        module, *_ = build_store_kernel()
        strict = StaticRiskSelector(threshold=0.9)
        loose = StaticRiskSelector(threshold=0.1)
        assert strict.name == "static-risk@0.90"
        assert len(strict.select(module)) <= len(loose.select(module))

    def test_budget_mode_name(self):
        assert StaticRiskSelector(budget_fraction=0.25).name == "static-risk-top25%"

    def test_protection_preserves_semantics(self):
        source = (
            "output double result[2];\n"
            "void main() {\n"
            "    double s = 0.0;\n"
            "    for (int i = 0; i < 10; i = i + 1) { s = s + (double)i; }\n"
            "    result[0] = s;\n"
            "    result[1] = s * 0.5;\n"
            "}\n"
        )
        clean = compile_source(source)
        clean_result, clean_interp = run_module(clean)
        protected = compile_source(source)
        report = duplicate_instructions(
            protected, StaticRiskSelector().select(protected)
        )
        verify_module(protected)
        assert report.duplicated > 0
        result, interp = run_module(protected)
        assert result.status == "ok"
        assert interp.read_global("result") == clean_interp.read_global("result")

    def test_duplicated_instructions_ordered_by_module_order(self):
        from repro.workloads import get_workload

        module = get_workload("fft").compile()
        selected = StaticRiskSelector().select(module)
        order = {id(inst): i for i, inst in enumerate(module.instructions())}
        positions = [order[id(inst)] for inst in selected]
        assert positions == sorted(positions)
