"""Documentation/code synchronisation: the diagnostic-code table in
docs/static_analysis.md must list exactly the lint rules registered in
`repro.diag` — a rule added without docs (or documented without code)
fails here."""

import re
from pathlib import Path

from repro.diag import registered_rules

DOC = Path(__file__).resolve().parent.parent / "docs" / "static_analysis.md"


def documented_codes():
    """(code, severity) pairs parsed from the markdown table."""
    rows = {}
    pattern = re.compile(
        r"^\|\s*`([A-Z]+\d+)`\s*\|\s*(note|warning|error)\s*\|"
    )
    for line in DOC.read_text().splitlines():
        match = pattern.match(line.strip())
        if match:
            rows[match.group(1)] = match.group(2)
    return rows


class TestLintTableSync:
    def test_every_registered_rule_is_documented(self):
        documented = set(documented_codes())
        registered = {code for code, _desc in registered_rules()}
        missing = registered - documented
        assert not missing, (
            f"lint rules missing from docs/static_analysis.md: {missing}"
        )

    def test_every_documented_code_is_registered(self):
        documented = set(documented_codes())
        registered = {code for code, _desc in registered_rules()}
        stale = documented - registered
        assert not stale, (
            f"documented lint codes with no implementation: {stale}"
        )

    def test_table_parse_found_rules(self):
        # Guard against the regex silently matching nothing.
        assert len(documented_codes()) >= 6

    def test_documented_severities_match_emitted(self):
        """Each rule's documented severity matches what it emits on a
        module crafted to trigger it (spot-checked via the source)."""
        import inspect

        from repro.diag import rules as rules_module

        source_of = {
            code: inspect.getsource(fn)
            for code, (_desc, fn) in rules_module._RULES.items()
        }
        for code, severity in documented_codes().items():
            expected = f"Severity.{severity.upper()}"
            assert expected in source_of[code], (
                f"{code} documented as {severity!r} but its rule source "
                f"never emits {expected}"
            )


OBS_DOC = Path(__file__).resolve().parent.parent / "docs" / "observability.md"


class TestMetricCatalogSync:
    """docs/observability.md must list every registered metric name."""

    def test_every_registered_metric_is_documented(self):
        from repro.obs import CATALOG

        doc = OBS_DOC.read_text()
        missing = [name for name in CATALOG if name not in doc]
        assert not missing, (
            f"metrics missing from docs/observability.md: {missing}"
        )

    def test_every_documented_metric_is_registered(self):
        from repro.obs import CATALOG

        documented = set(
            re.findall(r"`(ipas_[a-z0-9_]+)(?:\{[a-z]+\})?`", OBS_DOC.read_text())
        )
        stale = documented - set(CATALOG)
        assert not stale, (
            f"documented metric names with no declaration: {stale}"
        )

    def test_catalog_is_nonempty(self):
        from repro.obs import CATALOG

        assert len(CATALOG) >= 20


ROBUSTNESS_DOC = Path(__file__).resolve().parent.parent / "docs" / "robustness.md"


def documented_fault_models():
    """Model names parsed from the table in the fault-models section.

    Scoped between the section heading and the next ``## `` heading —
    other robustness.md tables also use backticked first columns."""
    text = ROBUSTNESS_DOC.read_text()
    start = text.index("## Pluggable fault models")
    end = text.index("\n## ", start + 1)
    section = text[start:end]
    return set(re.findall(r"^\|\s*`([a-z0-9-]+)`\s*\|", section, re.MULTILINE))


class TestFaultModelTableSync:
    """docs/robustness.md's model table must match the registry."""

    def test_every_registered_model_is_documented(self):
        from repro.faults.models import FAULT_MODELS

        missing = set(FAULT_MODELS) - documented_fault_models()
        assert not missing, (
            f"fault models missing from docs/robustness.md: {missing}"
        )

    def test_every_documented_model_is_registered(self):
        from repro.faults.models import FAULT_MODELS

        stale = documented_fault_models() - set(FAULT_MODELS)
        assert not stale, (
            f"documented fault models with no implementation: {stale}"
        )

    def test_table_parse_found_models(self):
        assert len(documented_fault_models()) >= 5
