"""Unit tests for the IR type system."""

import pytest

from repro.ir import (
    ArrayType,
    F64,
    FloatType,
    FunctionType,
    I1,
    I32,
    I64,
    IntType,
    PointerType,
    VOID,
    pointer_to,
)


class TestScalarTypes:
    def test_int_widths(self):
        assert I1.bits == 1
        assert I32.bits == 32
        assert I64.bits == 64

    def test_int_byte_sizes_match_table1_feature12(self):
        assert I1.byte_size == 1
        assert I32.byte_size == 4
        assert I64.byte_size == 8
        assert F64.byte_size == 8
        assert pointer_to(F64).byte_size == 8

    def test_unsupported_int_width_rejected(self):
        with pytest.raises(ValueError):
            IntType(7)

    def test_structural_equality(self):
        assert IntType(64) == I64
        assert FloatType(64) == F64
        assert IntType(32) != I64
        assert pointer_to(F64) == pointer_to(FloatType(64))
        assert pointer_to(F64) != pointer_to(I64)

    def test_hashable(self):
        s = {I64, IntType(64), F64, pointer_to(I64)}
        assert len(s) == 3

    def test_signed_range(self):
        assert I32.min_signed == -(2**31)
        assert I32.max_signed == 2**31 - 1
        assert I1.min_signed == 0
        assert I1.max_signed == 1

    def test_predicates(self):
        assert I64.is_integer() and I64.is_scalar()
        assert F64.is_float() and F64.is_scalar()
        assert VOID.is_void() and not VOID.is_scalar()
        assert pointer_to(I64).is_pointer()

    def test_str(self):
        assert str(I64) == "i64"
        assert str(F64) == "f64"
        assert str(pointer_to(F64)) == "f64*"
        assert str(VOID) == "void"


class TestAggregateTypes:
    def test_array(self):
        arr = ArrayType(F64, 10)
        assert arr.element == F64
        assert arr.count == 10
        assert arr.byte_size == 80
        assert str(arr) == "[10 x f64]"

    def test_array_of_nonscalar_rejected(self):
        with pytest.raises(ValueError):
            ArrayType(ArrayType(F64, 2), 3)

    def test_array_nonpositive_count_rejected(self):
        with pytest.raises(ValueError):
            ArrayType(F64, 0)

    def test_function_type(self):
        ft = FunctionType(F64, (F64, I64))
        assert ft.return_type == F64
        assert ft.param_types == (F64, I64)
        assert ft == FunctionType(F64, (F64, I64))
        assert ft != FunctionType(I64, (F64, I64))
        assert str(ft) == "f64 (f64, i64)"

    def test_pointer_to_void_rejected(self):
        with pytest.raises(ValueError):
            PointerType(VOID)

    def test_void_has_no_byte_size(self):
        with pytest.raises(TypeError):
            _ = VOID.byte_size
